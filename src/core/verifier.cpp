#include "core/verifier.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "core/algebra.hpp"
#include "core/records.hpp"
#include "lane/bounds.hpp"
#include "pls/pointer.hpp"

namespace lanecert {

namespace {

constexpr std::uint8_t kTypeV = 0;
constexpr std::uint8_t kTypeE = 1;
constexpr std::uint8_t kTypeP = 2;
constexpr std::uint8_t kTypeB = 3;
constexpr std::uint8_t kTypeT = 4;

std::string encodeSummary(const SummaryRec& r) {
  Encoder enc;
  r.encodeTo(enc);
  return enc.take();
}

/// Reject helper: checks are expressed as `require(cond)`.
void require(bool cond) {
  if (!cond) throw DecodeError{};
}

/// Per-vertex verification context.
class Checker {
 public:
  Checker(const Property& prop, const CoreVerifierParams& params,
          const EdgeView& view)
      : alg_(prop), params_(params), view_(view) {}

  bool run();

 private:
  void validateSummaryCommon(const SummaryRec& s) const;
  void validateEntry(const ChainEntry& e);
  void validateCert(const EdgeCert& cert, bool isVirtual);
  void reconstructVirtualEdges(const std::vector<EdgeLabel>& labels);
  void recordNodeSummary(const SummaryRec& s);
  void recordTmSummary(const SummaryRec& s);
  void topologyChecks();

  LaneAlgebra alg_;
  const CoreVerifierParams& params_;
  const EdgeView& view_;

  std::vector<EdgeCert> certs_;           ///< own + reconstructed virtual
  std::vector<bool> certIsVirtual_;
  std::map<std::int64_t, std::string> nodeSum_;  ///< nodeId -> B(node) bytes
  std::map<std::int64_t, std::string> tmSum_;    ///< nodeId -> B(TM(subtree)) bytes
  /// Per T-node: childId -> one representative T entry (chain-derived).
  std::map<std::int64_t, std::map<std::int64_t, const ChainEntry*>> heldChildren_;
  /// Every T entry seen anywhere (chains + root entries), for gluing checks.
  std::vector<const ChainEntry*> allTreeEntries_;
  /// Per B-node id: the set of chain-lower node ids entering it.
  std::map<std::int64_t, std::set<std::int64_t>> bridgeLowers_;
  std::int64_t rootTNode_ = -1;
  std::int64_t rootChildNode_ = -1;
  std::string rootEntryBytes_;
};

void Checker::validateSummaryCommon(const SummaryRec& s) const {
  require(!s.lanes.empty());
  for (int lane : s.lanes) {
    require(lane >= 0 && lane < params_.maxLanes);
  }
}

void Checker::recordNodeSummary(const SummaryRec& s) {
  validateSummaryCommon(s);
  const auto [it, inserted] = nodeSum_.emplace(s.nodeId, encodeSummary(s));
  if (!inserted) require(it->second == encodeSummary(s));
}

void Checker::recordTmSummary(const SummaryRec& s) {
  validateSummaryCommon(s);
  const auto [it, inserted] = tmSum_.emplace(s.nodeId, encodeSummary(s));
  if (!inserted) require(it->second == encodeSummary(s));
}

void Checker::validateEntry(const ChainEntry& e) {
  recordNodeSummary(e.self);
  switch (e.kind) {
    case ChainEntry::Kind::kBaseE: {
      require(e.self.type == kTypeE);
      require(e.self.lanes.size() == 1);
      const int lane = e.self.lanes[0];
      const NodeData d = alg_.baseE(lane, e.self.inTerm.at(lane),
                                    e.self.outTerm.at(lane), e.eReal);
      require(d.state.encoding() == e.self.stateBytes);
      require(d.slots == e.self.slotOrder);
      break;
    }
    case ChainEntry::Kind::kBaseP: {
      require(e.self.type == kTypeP);
      std::vector<std::uint64_t> pathIds;
      for (int lane : e.self.lanes) {
        const std::uint64_t id = e.self.inTerm.at(lane);
        require(e.self.outTerm.at(lane) == id);
        pathIds.push_back(id);
      }
      require(e.pReal.size() + 1 == pathIds.size());
      const NodeData d = alg_.baseP(e.self.lanes, pathIds, e.pReal);
      require(d.state.encoding() == e.self.stateBytes);
      require(d.slots == e.self.slotOrder);
      break;
    }
    case ChainEntry::Kind::kBridge: {
      require(e.self.type == kTypeB);
      recordNodeSummary(e.part0);
      recordNodeSummary(e.part1);
      for (const SummaryRec* part : {&e.part0, &e.part1}) {
        require(part->type == kTypeV || part->type == kTypeT);
        if (part->type == kTypeV) {
          require(part->lanes.size() == 1);
          const int lane = part->lanes[0];
          const std::uint64_t vid = part->inTerm.at(lane);
          require(part->outTerm.at(lane) == vid);
          const NodeData d = alg_.baseV(lane, vid);
          require(d.state.encoding() == part->stateBytes);
          require(d.slots == part->slotOrder);
        }
      }
      require(std::binary_search(e.part0.lanes.begin(), e.part0.lanes.end(),
                                 e.laneI));
      require(std::binary_search(e.part1.lanes.begin(), e.part1.lanes.end(),
                                 e.laneJ));
      const NodeData d =
          alg_.bridge(alg_.fromSummary(e.part0), alg_.fromSummary(e.part1),
                      e.laneI, e.laneJ, e.bridgeReal);
      require(d.state.encoding() == e.self.stateBytes);
      require(d.slots == e.self.slotOrder);
      require(d.lanes == e.self.lanes);
      require(d.inTerm == e.self.inTerm);
      require(d.outTerm == e.self.outTerm);
      break;
    }
    case ChainEntry::Kind::kTree: {
      require(e.self.type == kTypeT);
      require(e.childSelf.type == kTypeE || e.childSelf.type == kTypeP ||
              e.childSelf.type == kTypeB);
      require(e.childSelf.nodeId == e.childId);
      recordNodeSummary(e.childSelf);
      require(e.subtree.nodeId == e.childId);
      require(e.subtree.type == e.childSelf.type);
      require(e.subtree.lanes == e.childSelf.lanes);
      require(e.subtree.inTerm == e.childSelf.inTerm);
      recordTmSummary(e.subtree);
      // Tree children: nested lanes, pairwise disjoint, glued onto the
      // child's out-terminals; the fold replays the Parent-merges.
      NodeData cur = alg_.fromSummary(e.childSelf);
      int prevMinLane = -1;
      std::set<int> used;
      for (const SummaryRec& d : e.treeChildren) {
        require(d.type == kTypeE || d.type == kTypeP || d.type == kTypeB);
        recordTmSummary(d);
        require(d.lanes[0] > prevMinLane);  // sorted fold order
        prevMinLane = d.lanes[0];
        for (int lane : d.lanes) {
          require(used.insert(lane).second);  // siblings disjoint
          require(std::binary_search(e.childSelf.lanes.begin(),
                                     e.childSelf.lanes.end(), lane));
          // Gluing: the child's in-terminal IS c's out-terminal.
          require(d.inTerm.at(lane) == e.childSelf.outTerm.at(lane));
        }
        cur = alg_.parentMerge(alg_.fromSummary(d), cur);
      }
      require(cur.state.encoding() == e.subtree.stateBytes);
      require(cur.slots == e.subtree.slotOrder);
      require(cur.outTerm == e.subtree.outTerm);
      if (e.childIsRoot) {
        // B(X) = B(Tree-merge(T_rootchild)).
        require(e.self.lanes == e.subtree.lanes);
        require(e.self.inTerm == e.subtree.inTerm);
        require(e.self.outTerm == e.subtree.outTerm);
        require(e.self.slotOrder == e.subtree.slotOrder);
        require(e.self.stateBytes == e.subtree.stateBytes);
      }
      allTreeEntries_.push_back(&e);
      break;
    }
  }
}

void Checker::validateCert(const EdgeCert& cert, bool isVirtual) {
  require(cert.endA != cert.endB);
  require(cert.real == !isVirtual);
  if (!isVirtual) {
    require(cert.endA == view_.selfId || cert.endB == view_.selfId);
  }
  // Root metadata must agree across every certificate at this vertex.
  // Every REAL edge carries the root record; virtual certificates only
  // carry the root ids (their endpoints see the record on real edges).
  require(cert.hasRootEntry == !isVirtual);
  if (rootTNode_ == -1) {
    require(!isVirtual);  // own certificates are validated first
    rootTNode_ = cert.rootTNode;
    rootChildNode_ = cert.rootChildNode;
    Encoder enc;
    cert.rootEntry.encodeTo(enc);
    rootEntryBytes_ = enc.take();
    require(cert.rootEntry.kind == ChainEntry::Kind::kTree);
    require(cert.rootEntry.self.nodeId == rootTNode_);
    require(cert.rootEntry.childId == rootChildNode_);
    require(cert.rootEntry.childIsRoot);
    validateEntry(cert.rootEntry);
    // Acceptance: the whole graph's hom class must satisfy φ.
    require(alg_.accepts(alg_.fromSummary(cert.rootEntry.self)));
  } else {
    require(cert.rootTNode == rootTNode_);
    require(cert.rootChildNode == rootChildNode_);
    if (cert.hasRootEntry) {
      Encoder enc;
      cert.rootEntry.encodeTo(enc);
      require(enc.str() == rootEntryBytes_);
    }
  }

  // Chain shape: owner entry, then alternating T, B, ..., ending at root T.
  const std::size_t len = cert.chain.size();
  require(len >= 2);
  require(len <= static_cast<std::size_t>(2 * params_.maxLanes + 2));
  for (std::size_t i = 0; i < len; ++i) {
    const ChainEntry& e = cert.chain[i];
    if (i == 0) {
      require(e.kind == ChainEntry::Kind::kBaseE ||
              e.kind == ChainEntry::Kind::kBaseP ||
              e.kind == ChainEntry::Kind::kBridge);
    } else if (i % 2 == 1) {
      require(e.kind == ChainEntry::Kind::kTree);
    } else {
      require(e.kind == ChainEntry::Kind::kBridge);
    }
    validateEntry(e);
  }
  require(cert.chain.back().kind == ChainEntry::Kind::kTree);
  require(cert.chain.back().self.nodeId == rootTNode_);

  // Linkage between consecutive entries.
  for (std::size_t i = 1; i < len; ++i) {
    const ChainEntry& upper = cert.chain[i];
    const ChainEntry& lower = cert.chain[i - 1];
    if (upper.kind == ChainEntry::Kind::kTree) {
      require(upper.childId == lower.self.nodeId);
      require(encodeSummary(upper.childSelf) == encodeSummary(lower.self));
      heldChildren_[upper.self.nodeId][upper.childId] = &upper;
    } else {  // kBridge
      const bool inPart0 = lower.self.nodeId == upper.part0.nodeId;
      const bool inPart1 = lower.self.nodeId == upper.part1.nodeId;
      require(inPart0 || inPart1);
      const SummaryRec& part = inPart0 ? upper.part0 : upper.part1;
      require(encodeSummary(part) == encodeSummary(lower.self));
      bridgeLowers_[upper.self.nodeId].insert(lower.self.nodeId);
    }
  }

  // Owner-entry binding to this physical/reconstructed edge.
  const ChainEntry& owner = cert.chain[0];
  const std::set<std::uint64_t> ends{cert.endA, cert.endB};
  switch (owner.kind) {
    case ChainEntry::Kind::kBaseE: {
      const int lane = owner.self.lanes[0];
      require(ends == std::set<std::uint64_t>{owner.self.inTerm.at(lane),
                                              owner.self.outTerm.at(lane)});
      require(owner.eReal == cert.real);
      break;
    }
    case ChainEntry::Kind::kBaseP: {
      bool found = false;
      for (std::size_t i = 0; i + 1 < owner.self.slotOrder.size(); ++i) {
        if (ends == std::set<std::uint64_t>{owner.self.slotOrder[i],
                                            owner.self.slotOrder[i + 1]}) {
          require(owner.pReal[i] == cert.real);
          found = true;
        }
      }
      require(found);
      break;
    }
    case ChainEntry::Kind::kBridge: {
      require(ends ==
              std::set<std::uint64_t>{owner.part0.outTerm.at(owner.laneI),
                                      owner.part1.outTerm.at(owner.laneJ)});
      require(owner.bridgeReal == cert.real);
      break;
    }
    default:
      require(false);
  }
}

void Checker::reconstructVirtualEdges(const std::vector<EdgeLabel>& labels) {
  struct Rec {
    std::size_t labelIdx;
    const PathThrough* p;
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<Rec>> groups;
  for (std::size_t li = 0; li < labels.size(); ++li) {
    if (params_.maxThrough > 0) {
      require(labels[li].through.size() <=
              static_cast<std::size_t>(params_.maxThrough));
    }
    std::set<std::pair<std::uint64_t, std::uint64_t>> seenHere;
    for (const PathThrough& p : labels[li].through) {
      require(seenHere.emplace(p.uId, p.vId).second);  // one per path per edge
      groups[{p.uId, p.vId}].push_back(Rec{li, &p});
    }
  }
  for (const auto& [key, recs] : groups) {
    const auto& [uId, vId] = key;
    require(uId != vId);
    require(recs.size() <= 2);
    const PathThrough& first = *recs[0].p;
    require(first.fwdRank >= 1 && first.bwdRank >= 1);
    require(first.fwdRank + first.bwdRank >= 3);  // path length >= 2 edges
    if (recs.size() == 2) {
      const PathThrough& second = *recs[1].p;
      require(second.payload == first.payload);
      require(second.fwdRank + second.bwdRank == first.fwdRank + first.bwdRank);
      const std::uint64_t a = std::min(first.fwdRank, second.fwdRank);
      const std::uint64_t b = std::max(first.fwdRank, second.fwdRank);
      require(b == a + 1);
      // An intermediate vertex of a simple path is not an endpoint.
      require(view_.selfId != uId && view_.selfId != vId);
      continue;
    }
    // Single record: this vertex must be one endpoint of the path.
    const bool atU = first.fwdRank == 1;
    const bool atV = first.bwdRank == 1;
    require(atU != atV);
    require((atU && view_.selfId == uId) || (atV && view_.selfId == vId));
    Decoder dec(first.payload);
    EdgeCert cert = EdgeCert::decodeFrom(dec);
    require(dec.atEnd());
    require(std::set<std::uint64_t>{cert.endA, cert.endB} ==
            std::set<std::uint64_t>{uId, vId});
    certs_.push_back(std::move(cert));
    certIsVirtual_.push_back(true);
  }
}

void Checker::topologyChecks() {
  // B-node: all chains entering it at this vertex stay in one part.
  for (const auto& [bId, lowers] : bridgeLowers_) {
    require(lowers.size() <= 1);
  }
  // T-nodes: gluing structure of the held children.
  // Collect held entries per T-node (including the root entry, which may
  // list gluings at this vertex even when no chain passes through the root
  // child — the w = 1 P-node case).
  std::map<std::int64_t, std::vector<const ChainEntry*>> treeEntriesByNode;
  for (const ChainEntry* e : allTreeEntries_) {
    treeEntriesByNode[e->self.nodeId].push_back(e);
  }
  for (const auto& [xId, entries] : treeEntriesByNode) {
    const auto held = heldChildren_.find(xId);
    // (a) Declared gluings at this vertex must point to held children, and
    //     they connect the held children.
    std::map<std::int64_t, std::int64_t> unionFind;
    auto findRep = [&unionFind](std::int64_t x) {
      while (unionFind.at(x) != x) x = unionFind.at(x);
      return x;
    };
    if (held != heldChildren_.end()) {
      for (const auto& [cid, entry] : held->second) unionFind[cid] = cid;
    }
    for (const ChainEntry* e : entries) {
      std::vector<std::int64_t> group;
      if (held != heldChildren_.end() &&
          held->second.count(e->childId) != 0) {
        group.push_back(e->childId);
      }
      for (const SummaryRec& d : e->treeChildren) {
        bool gluedHere = false;
        for (const auto& [lane, id] : d.inTerm.entries) {
          if (id == view_.selfId) gluedHere = true;
        }
        if (!gluedHere) continue;
        // A declared gluing at this vertex: the child must be held here.
        require(held != heldChildren_.end() &&
                held->second.count(d.nodeId) != 0);
        group.push_back(d.nodeId);
      }
      for (std::size_t i = 1; i < group.size(); ++i) {
        const std::int64_t a = findRep(group[0]);
        const std::int64_t b = findRep(group[i]);
        if (a != b) unionFind[b] = a;
      }
    }
    // (b) Held children must be pairwise glued (transitively) at this
    //     vertex — the "no neighbor outside" check.
    if (held != heldChildren_.end() && !held->second.empty()) {
      const std::int64_t rep = findRep(held->second.begin()->first);
      for (const auto& [cid, entry] : held->second) {
        require(findRep(cid) == rep);
      }
      // (c) Non-root children whose in-terminal is this vertex must be
      //     listed (with this gluing) by some held entry of X.
      for (const auto& [cid, entry] : held->second) {
        if (entry->childIsRoot) continue;
        for (const auto& [lane, id] : entry->childSelf.inTerm.entries) {
          if (id != view_.selfId) continue;
          bool listed = false;
          for (const ChainEntry* pe : entries) {
            for (const SummaryRec& d : pe->treeChildren) {
              if (d.nodeId == cid && d.inTerm.has(lane) &&
                  d.inTerm.at(lane) == view_.selfId) {
                listed = true;
              }
            }
          }
          require(listed);
        }
      }
    }
  }
}

bool Checker::run() {
  // Degenerate single-vertex network: decide φ(K1) directly.
  if (view_.incidentLabels.empty()) return alg_.acceptsSingleVertex();

  std::vector<EdgeLabel> labels;
  labels.reserve(view_.incidentLabels.size());
  for (const std::string& bytes : view_.incidentLabels) {
    labels.push_back(EdgeLabel::decode(bytes));
  }

  // Prop 2.2 pointer layer.
  std::vector<PointerRecord> pointers;
  for (const EdgeLabel& l : labels) pointers.push_back(l.pointer);
  require(checkPointerAt(view_.selfId, pointers, std::nullopt));
  const std::uint64_t anchorId = pointers[0].rootId;

  // Own certificates (each physically incident edge must be real).
  for (const EdgeLabel& l : labels) {
    require(l.own.real);
    certs_.push_back(l.own);
    certIsVirtual_.push_back(false);
  }
  // Theorem 1 embedding reconstruction.
  reconstructVirtualEdges(labels);

  for (std::size_t i = 0; i < certs_.size(); ++i) {
    validateCert(certs_[i], certIsVirtual_[i]);
  }
  topologyChecks();

  // Anchor: the pointer target must be the root child's first in-terminal.
  if (view_.selfId == anchorId) {
    Decoder dec(rootEntryBytes_);
    const ChainEntry root = ChainEntry::decodeFrom(dec);
    const int minLane = root.childSelf.lanes[0];
    require(root.childSelf.inTerm.at(minLane) == view_.selfId);
  }
  return true;
}

}  // namespace

CoreVerifierParams theorem1Params(int k) {
  CoreVerifierParams p;
  // Clamp to practical limits; f/h explode combinatorially in k.
  p.maxLanes = static_cast<int>(std::min<long long>(fLanes(k + 1), 1 << 20));
  p.maxThrough = static_cast<int>(std::min<long long>(hCongestion(k + 1), 1 << 20));
  return p;
}

EdgeVerifier makeCoreVerifier(PropertyPtr prop, CoreVerifierParams params) {
  return [prop = std::move(prop), params](const EdgeView& view) -> bool {
    try {
      Checker checker(*prop, params, view);
      return checker.run();
    } catch (const std::exception&) {
      return false;
    }
  };
}

}  // namespace lanecert
