#include "core/records.hpp"

#include <algorithm>

namespace lanecert {

namespace {

constexpr std::uint64_t kMaxListLen = 1 << 16;  ///< decode sanity cap

/// List-length gate: the sanity cap PLUS a buffer bound.  Every list
/// element consumes at least one byte, so a claimed count beyond the bytes
/// left to read is provably malformed — rejecting BEFORE the reserve/alloc
/// below means a hostile length prefix on a near-empty buffer can never
/// buy a large allocation (the fuzzer's kLengthLie mutation exercises
/// exactly this).
void checkLen(std::uint64_t n, const Decoder& dec) {
  if (n > kMaxListLen || n > dec.remaining()) throw DecodeError{};
}

}  // namespace

std::uint64_t LaneTerms::at(int lane) const {
  for (const auto& [l, id] : entries) {
    if (l == lane) return id;
  }
  throw DecodeError{};
}

bool LaneTerms::has(int lane) const {
  for (const auto& [l, id] : entries) {
    if (l == lane) return true;
  }
  return false;
}

void LaneTerms::set(int lane, std::uint64_t id) {
  for (auto& [l, v] : entries) {
    if (l == lane) {
      v = id;
      return;
    }
  }
  entries.emplace_back(lane, id);
  std::sort(entries.begin(), entries.end());
}

void LaneTerms::encodeTo(Encoder& enc) const {
  enc.u64(entries.size());
  for (const auto& [lane, id] : entries) {
    enc.u64(static_cast<std::uint64_t>(lane));
    enc.u64(id);
  }
}

LaneTerms LaneTerms::decodeFrom(Decoder& dec, std::pmr::memory_resource* mr) {
  LaneTerms t(mr);
  const std::uint64_t n = dec.u64();
  checkLen(n, dec);
  t.entries.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    const int lane = static_cast<int>(dec.u64());
    const std::uint64_t id = dec.u64();
    t.entries.emplace_back(lane, id);
  }
  if (!std::is_sorted(t.entries.begin(), t.entries.end())) throw DecodeError{};
  return t;
}

void SummaryRec::encodeTo(Encoder& enc) const {
  enc.i64(nodeId);
  enc.u64(type);
  enc.u64(lanes.size());
  for (int l : lanes) enc.u64(static_cast<std::uint64_t>(l));
  inTerm.encodeTo(enc);
  outTerm.encodeTo(enc);
  enc.u64(slotOrder.size());
  for (std::uint64_t v : slotOrder) enc.u64(v);
  enc.bytes(stateBytes);
}

SummaryRec SummaryRec::decodeFrom(Decoder& dec,
                                  std::pmr::memory_resource* mr) {
  SummaryRec r(mr);
  r.nodeId = dec.i64();
  r.type = static_cast<std::uint8_t>(dec.u64());
  if (r.type > 4) throw DecodeError{};
  const std::uint64_t nl = dec.u64();
  checkLen(nl, dec);
  r.lanes.reserve(static_cast<std::size_t>(nl));
  for (std::uint64_t i = 0; i < nl; ++i) {
    r.lanes.push_back(static_cast<int>(dec.u64()));
  }
  if (!std::is_sorted(r.lanes.begin(), r.lanes.end()) ||
      std::adjacent_find(r.lanes.begin(), r.lanes.end()) != r.lanes.end()) {
    throw DecodeError{};
  }
  r.inTerm = LaneTerms::decodeFrom(dec, mr);
  r.outTerm = LaneTerms::decodeFrom(dec, mr);
  const std::uint64_t ns = dec.u64();
  checkLen(ns, dec);
  r.slotOrder.reserve(static_cast<std::size_t>(ns));
  for (std::uint64_t i = 0; i < ns; ++i) r.slotOrder.push_back(dec.u64());
  const std::string_view state = dec.bytesView();
  r.stateBytes.assign(state.begin(), state.end());
  return r;
}

void ChainEntry::encodeTo(Encoder& enc) const {
  enc.u64(static_cast<std::uint64_t>(kind));
  self.encodeTo(enc);
  switch (kind) {
    case Kind::kBaseE:
      enc.boolean(eReal);
      break;
    case Kind::kBaseP:
      enc.u64(pReal.size());
      for (std::uint8_t b : pReal) enc.boolean(b != 0);
      break;
    case Kind::kBridge:
      enc.u64(static_cast<std::uint64_t>(laneI));
      enc.u64(static_cast<std::uint64_t>(laneJ));
      enc.boolean(bridgeReal);
      part0.encodeTo(enc);
      part1.encodeTo(enc);
      break;
    case Kind::kTree:
      enc.i64(childId);
      enc.boolean(childIsRoot);
      childSelf.encodeTo(enc);
      subtree.encodeTo(enc);
      enc.u64(treeChildren.size());
      for (const SummaryRec& r : treeChildren) r.encodeTo(enc);
      break;
  }
}

ChainEntry ChainEntry::decodeFrom(Decoder& dec,
                                  std::pmr::memory_resource* mr) {
  ChainEntry e(mr);
  const std::size_t begin = dec.pos();
  const std::uint64_t k = dec.u64();
  if (k > 3) throw DecodeError{};
  e.kind = static_cast<Kind>(k);
  e.self = SummaryRec::decodeFrom(dec, mr);
  switch (e.kind) {
    case Kind::kBaseE:
      e.eReal = dec.boolean();
      break;
    case Kind::kBaseP: {
      const std::uint64_t n = dec.u64();
      checkLen(n, dec);
      e.pReal.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        e.pReal.push_back(dec.boolean() ? 1 : 0);
      }
      break;
    }
    case Kind::kBridge:
      e.laneI = static_cast<int>(dec.u64());
      e.laneJ = static_cast<int>(dec.u64());
      e.bridgeReal = dec.boolean();
      e.part0 = SummaryRec::decodeFrom(dec, mr);
      e.part1 = SummaryRec::decodeFrom(dec, mr);
      break;
    case Kind::kTree: {
      e.childId = dec.i64();
      e.childIsRoot = dec.boolean();
      e.childSelf = SummaryRec::decodeFrom(dec, mr);
      e.subtree = SummaryRec::decodeFrom(dec, mr);
      const std::uint64_t n = dec.u64();
      checkLen(n, dec);
      e.treeChildren.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        e.treeChildren.push_back(SummaryRec::decodeFrom(dec, mr));
      }
      break;
    }
  }
  // Memoization key for the verifier's caches: only when the buffer
  // outlives the decoder (borrowed label bytes) may the span be kept.
  if (dec.borrowsBuffer()) {
    e.srcBytes = dec.buffer().substr(begin, dec.pos() - begin);
  }
  return e;
}

void EdgeCert::encodeTo(Encoder& enc) const {
  enc.boolean(real);
  enc.u64(endA);
  enc.u64(endB);
  enc.i64(rootTNode);
  enc.i64(rootChildNode);
  enc.boolean(hasRootEntry);
  if (hasRootEntry) rootEntry.encodeTo(enc);
  enc.u64(chain.size());
  for (const ChainEntry& e : chain) e.encodeTo(enc);
}

EdgeCert EdgeCert::decodeFrom(Decoder& dec, std::pmr::memory_resource* mr) {
  EdgeCert c(mr);
  c.real = dec.boolean();
  c.endA = dec.u64();
  c.endB = dec.u64();
  c.rootTNode = dec.i64();
  c.rootChildNode = dec.i64();
  c.hasRootEntry = dec.boolean();
  if (c.hasRootEntry) c.rootEntry = ChainEntry::decodeFrom(dec, mr);
  const std::uint64_t n = dec.u64();
  checkLen(n, dec);
  c.chain.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    c.chain.push_back(ChainEntry::decodeFrom(dec, mr));
  }
  return c;
}

std::string EdgeCert::encoded() const {
  Encoder enc;
  encodeTo(enc);
  return enc.take();
}

void PathThrough::encodeTo(Encoder& enc) const {
  enc.u64(uId);
  enc.u64(vId);
  enc.u64(fwdRank);
  enc.u64(bwdRank);
  enc.bytes(payload);
}

PathThrough PathThrough::decodeFrom(Decoder& dec) {
  PathThrough p;
  p.uId = dec.u64();
  p.vId = dec.u64();
  p.fwdRank = dec.u64();
  p.bwdRank = dec.u64();
  p.payload = dec.bytes();
  return p;
}

std::string EdgeLabel::encoded() const {
  Encoder enc;
  own.encodeTo(enc);
  pointer.encodeTo(enc);
  enc.u64(through.size());
  for (const PathThrough& p : through) p.encodeTo(enc);
  return enc.take();
}

EdgeLabel EdgeLabel::decode(std::string_view bytes) {
  Decoder dec(bytes);
  EdgeLabel l;
  l.own = EdgeCert::decodeFrom(dec);
  l.pointer = PointerRecord::decodeFrom(dec);
  const std::uint64_t n = dec.u64();
  checkLen(n, dec);
  for (std::uint64_t i = 0; i < n; ++i) {
    l.through.push_back(PathThrough::decodeFrom(dec));
  }
  if (!dec.atEnd()) throw DecodeError{};
  // This variant promises a result that does NOT alias `bytes` (callers may
  // drop the buffer); scrub the decode-provenance spans.
  l.own.rootEntry.srcBytes = {};
  for (ChainEntry& e : l.own.chain) e.srcBytes = {};
  return l;
}

PathThroughView PathThroughView::decodeFrom(Decoder& dec) {
  PathThroughView p;
  p.uId = dec.u64();
  p.vId = dec.u64();
  p.fwdRank = dec.u64();
  p.bwdRank = dec.u64();
  p.payload = dec.bytesView();
  return p;
}

EdgeLabelView EdgeLabelView::decode(std::string_view bytes, Arena& arena) {
  Decoder dec(bytes);
  // Move-CONSTRUCT the cert (keeps the arena resource); a move-assignment
  // into a default-constructed member would deep-copy back onto the heap
  // (pmr allocators do not propagate on assignment).
  EdgeLabelView l{EdgeCert::decodeFrom(dec, &arena.resource()),
                  PointerRecord::decodeFrom(dec),
                  {}};
  const std::uint64_t n = dec.u64();
  checkLen(n, dec);
  const std::span<PathThroughView> through =
      arena.allocSpan<PathThroughView>(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    through[static_cast<std::size_t>(i)] = PathThroughView::decodeFrom(dec);
  }
  if (!dec.atEnd()) throw DecodeError{};
  l.through = through;
  return l;
}

}  // namespace lanecert
