#pragma once
// The distributed verifier of the core scheme (Section 6.2 + Theorem 1).
//
// `makeCoreVerifier` returns a strictly local EdgeVerifier: a pure function
// of one vertex's identifier and the multiset of labels on its incident
// (real) edges.  It performs, per vertex:
//
//   1. Prop 2.2 pointer checks (spanning tree to the decomposition anchor).
//   2. Theorem 1 embedding checks: path records of virtual edges must form
//      consistent simple paths; endpoints reconstruct their virtual edges.
//   3. Input-flag checks: physically present edges must be certified as
//      real; reconstructed virtual edges as virtual.
//   4. Chain checks: shape (base/bridge, then alternating T/B up to the
//      root), linkage (each entry names the one below it, byte-exact), and
//      Observation 5.5's length bound.
//   5. Per-entry recomputation: base states from physical endpoints and
//      flags, Bridge-merge composition, and the Parent-merge fold of every
//      T-node entry (Lemma 6.5), all via the Prop 6.1 algebra.
//   6. Cross-certificate consistency: all records naming the same node (or
//      the same merged subtree) must agree byte-for-byte.
//   7. Gluing topology: held children of every T-node must be linked by
//      declared gluings at this vertex (the paper's "no neighbor outside"
//      checks), non-root children must be listed by a held parent entry,
//      and chains entering a B-node must stay within one part.
//   8. Root checks: all certificates agree on the root records and the
//      property accepts the root hom state; the pointer's anchor vertex
//      confirms it is the root child's first in-terminal.

#include "mso/property.hpp"
#include "pls/scheme.hpp"

namespace lanecert {

/// Verifier-side parameters (the constants of Theorem 1 for the target
/// pathwidth bound).
struct CoreVerifierParams {
  /// Upper bound on lane indices; certifies lanewidth < maxLanes and hence
  /// pathwidth <= maxLanes - 1 of the completion.  Chains longer than
  /// 2 * maxLanes + 2 entries are rejected (Observation 5.5).
  int maxLanes = 64;
  /// Max embedding paths through one edge (0 = unlimited); h(k+1) bounds
  /// honest labelings.
  int maxThrough = 0;
};

/// Builds the local verifier for `prop`.
[[nodiscard]] EdgeVerifier makeCoreVerifier(PropertyPtr prop,
                                            CoreVerifierParams params = {});

/// The exact constants of Theorem 1 for certifying φ ∧ (pathwidth <= k):
/// maxLanes = f(k+1) (Prop 4.6 lane bound for width-(k+1) representations)
/// and maxThrough = h(k+1) (the completion embedding congestion).  Honest
/// labelings of pathwidth-<=k graphs always pass; any accepted labeling
/// certifies that the real edges embed in a graph of lanewidth <= f(k+1).
[[nodiscard]] CoreVerifierParams theorem1Params(int k);

}  // namespace lanecert
