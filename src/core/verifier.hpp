#pragma once
// The distributed verifier of the core scheme (Section 6.2 + Theorem 1).
//
// `makeCoreVerifier` returns a strictly local EdgeVerifier: a pure function
// of one vertex's identifier and the multiset of labels on its incident
// (real) edges.  It performs, per vertex:
//
//   1. Prop 2.2 pointer checks (spanning tree to the decomposition anchor).
//   2. Theorem 1 embedding checks: path records of virtual edges must form
//      consistent simple paths; endpoints reconstruct their virtual edges.
//   3. Input-flag checks: physically present edges must be certified as
//      real; reconstructed virtual edges as virtual.
//   4. Chain checks: shape (base/bridge, then alternating T/B up to the
//      root), linkage (each entry names the one below it, byte-exact), and
//      Observation 5.5's length bound.
//   5. Per-entry recomputation: base states from physical endpoints and
//      flags, Bridge-merge composition, and the Parent-merge fold of every
//      T-node entry (Lemma 6.5), all via the Prop 6.1 algebra.
//   6. Cross-certificate consistency: all records naming the same node (or
//      the same merged subtree) must agree byte-for-byte.
//   7. Gluing topology: held children of every T-node must be linked by
//      declared gluings at this vertex (the paper's "no neighbor outside"
//      checks), non-root children must be listed by a held parent entry,
//      and chains entering a B-node must stay within one part.
//   8. Root checks: all certificates agree on the root records and the
//      property accepts the root hom state; the pointer's anchor vertex
//      confirms it is the root child's first in-terminal.
//
// The checks split into two classes, and the split is what makes sweeps
// cacheable: (5) is a PURE function of one chain entry's bytes plus the
// shared algebra — the same entry validates to the same verdict at every
// vertex — while (1)-(4) and (6)-(8) depend on the vertex's view.  Upper
// chain entries (everything near the hierarchy root) are shared by most
// edges of the graph, so `SweepEntryCache` memoizes class-(5) validations
// across vertices and threads: each distinct entry replays the lane algebra
// ONCE per sweep instead of once per vertex.  Cache hits can only skip
// recomputation whose outcome is forced (entry identity is full structural
// equality, and validation is deterministic), so verdicts are byte-for-byte
// independent of cache state, thread count, and sweep order.
//
// `CoreVerifierEngine` is the shareable heart of the verifier: the property
// algebra (built once), the verifier params, and the sweep cache.  One
// engine can check many vertices concurrently; each concurrent caller
// supplies its own `ThreadState` (the per-thread decode arena + flat
// scratch containers).  `makeCoreVerifier` wraps an engine and a
// thread_local state into the classic EdgeVerifier closure; `VerifySession`
// (core/verify_session.hpp) owns an engine plus per-shard states to make
// sweeps resumable.

#include <cstddef>
#include <memory>

#include "mso/property.hpp"
#include "pls/scheme.hpp"

namespace lanecert {

class LaneAlgebra;
struct ChainEntry;
struct VerifierScratch;

/// Verifier-side parameters (the constants of Theorem 1 for the target
/// pathwidth bound).
struct CoreVerifierParams {
  /// Upper bound on lane indices; certifies lanewidth < maxLanes and hence
  /// pathwidth <= maxLanes - 1 of the completion.  Chains longer than
  /// 2 * maxLanes + 2 entries are rejected (Observation 5.5).
  int maxLanes = 64;
  /// Max embedding paths through one edge (0 = unlimited); h(k+1) bounds
  /// honest labelings.
  int maxThrough = 0;
};

/// Sweep-level memo of chain entries whose pure (vertex-independent)
/// validation already passed.  Keyed by ENTRY IDENTITY — full structural
/// equality of the decoded record, which agrees with comparing encodings
/// (encodeTo is deterministic and injective) — so a hit can never conflate
/// two entries that differ in any byte.  Thread-safe: lookups and inserts
/// take a stripe lock hashed on the entry's node id; stored entries are
/// deep copies on the global heap, so they outlive the per-thread decode
/// arenas the probes point into.  Entries stay valid for the lifetime of
/// the algebra/params they were validated under (the owning engine never
/// changes either), which is why a session can keep its cache warm across
/// re-verification sweeps.
class SweepEntryCache {
 public:
  SweepEntryCache();
  ~SweepEntryCache();

  SweepEntryCache(const SweepEntryCache&) = delete;
  SweepEntryCache& operator=(const SweepEntryCache&) = delete;

  /// True if an entry structurally equal to `e` already passed validation.
  [[nodiscard]] bool containsValidated(const ChainEntry& e) const;
  /// Records `e` as validated (deep copy; no-op if already present).
  void markValidated(const ChainEntry& e);
  /// Number of distinct validated entries held.
  [[nodiscard]] std::size_t size() const;
  /// Drops every entry (bounds memory; never required for correctness).
  void clear();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The shareable core of the verifier: property + algebra + params + sweep
/// cache.  Immutable after construction except for the (internally locked)
/// cache, so any number of threads may call `check` concurrently as long as
/// each passes its own ThreadState.
class CoreVerifierEngine {
 public:
  explicit CoreVerifierEngine(PropertyPtr prop, CoreVerifierParams params = {});
  ~CoreVerifierEngine();

  CoreVerifierEngine(const CoreVerifierEngine&) = delete;
  CoreVerifierEngine& operator=(const CoreVerifierEngine&) = delete;

  /// Per-thread reusable verifier state: the decode arena plus the flat
  /// cross-certificate containers.  Allocated lazily on first use; reset
  /// per vertex, so steady-state checks stop allocating.
  class ThreadState {
   public:
    ThreadState();
    ~ThreadState();
    ThreadState(ThreadState&&) noexcept;
    ThreadState& operator=(ThreadState&&) noexcept;

   private:
    friend class CoreVerifierEngine;
    std::unique_ptr<VerifierScratch> impl_;
  };

  /// One vertex's local check; never throws (malformed labels reject).
  /// Safe to call concurrently with DISTINCT states.
  [[nodiscard]] bool check(const EdgeView& view, ThreadState& state) const;

  [[nodiscard]] const CoreVerifierParams& params() const { return params_; }
  /// Distinct entries validated so far (diagnostics / tests).
  [[nodiscard]] std::size_t sweepCacheSize() const;
  /// Drops the sweep cache (memory bound only; verdicts never depend on it).
  void clearSweepCache();

 private:
  PropertyPtr prop_;
  CoreVerifierParams params_;
  std::shared_ptr<const LaneAlgebra> algebra_;
  mutable SweepEntryCache cache_;
};

/// Builds the local verifier for `prop`: a thin closure over a shared
/// CoreVerifierEngine and a thread_local ThreadState.  The engine's sweep
/// cache persists for the closure's lifetime — sound, because cached
/// validations are pure functions of entry bytes, so reuse across sweeps
/// (or across labelings) can never change a verdict.
[[nodiscard]] EdgeVerifier makeCoreVerifier(PropertyPtr prop,
                                            CoreVerifierParams params = {});

/// The exact constants of Theorem 1 for certifying φ ∧ (pathwidth <= k):
/// maxLanes = f(k+1) (Prop 4.6 lane bound for width-(k+1) representations)
/// and maxThrough = h(k+1) (the completion embedding congestion).  Honest
/// labelings of pathwidth-<=k graphs always pass; any accepted labeling
/// certifies that the real edges embed in a graph of lanewidth <= f(k+1).
[[nodiscard]] CoreVerifierParams theorem1Params(int k);

}  // namespace lanecert
