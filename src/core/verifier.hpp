#pragma once
// The distributed verifier of the core scheme (Section 6.2 + Theorem 1).
//
// `makeCoreVerifier` returns a strictly local EdgeVerifier: a pure function
// of one vertex's identifier and the multiset of labels on its incident
// (real) edges.  It performs, per vertex:
//
//   1. Prop 2.2 pointer checks (spanning tree to the decomposition anchor).
//   2. Theorem 1 embedding checks: path records of virtual edges must form
//      consistent simple paths; endpoints reconstruct their virtual edges.
//   3. Input-flag checks: physically present edges must be certified as
//      real; reconstructed virtual edges as virtual.
//   4. Chain checks: shape (base/bridge, then alternating T/B up to the
//      root), linkage (each entry names the one below it, byte-exact), and
//      Observation 5.5's length bound.
//   5. Per-entry recomputation: base states from physical endpoints and
//      flags, Bridge-merge composition, and the Parent-merge fold of every
//      T-node entry (Lemma 6.5), all via the Prop 6.1 algebra.
//   6. Cross-certificate consistency: all records naming the same node (or
//      the same merged subtree) must agree byte-for-byte.
//   7. Gluing topology: held children of every T-node must be linked by
//      declared gluings at this vertex (the paper's "no neighbor outside"
//      checks), non-root children must be listed by a held parent entry,
//      and chains entering a B-node must stay within one part.
//   8. Root checks: all certificates agree on the root records and the
//      property accepts the root hom state; the pointer's anchor vertex
//      confirms it is the root child's first in-terminal.
//
// The checks split into two classes, and the split is what makes sweeps
// cacheable: (5) is a PURE function of one chain entry's bytes plus the
// shared algebra — the same entry validates to the same verdict at every
// vertex — while (1)-(4) and (6)-(8) depend on the vertex's view.  Upper
// chain entries (everything near the hierarchy root) are shared by most
// edges of the graph, so `SweepEntryCache` memoizes class-(5) validations
// across vertices and threads: each distinct entry replays the lane algebra
// ONCE per sweep instead of once per vertex.  Cache hits can only skip
// recomputation whose outcome is forced (entry identity is full structural
// equality, and validation is deterministic), so verdicts are byte-for-byte
// independent of cache state, thread count, and sweep order.
//
// `CoreVerifierEngine` is the shareable heart of the verifier: the property
// algebra (built once), the verifier params, and the sweep cache.  One
// engine can check many vertices concurrently; each concurrent caller
// supplies its own `ThreadState` (the per-thread decode arena + flat
// scratch containers).  `makeCoreVerifier` wraps an engine and a
// thread_local state into the classic EdgeVerifier closure; `VerifySession`
// (core/verify_session.hpp) owns an engine plus per-shard states to make
// sweeps resumable.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

#include "mso/property.hpp"
#include "pls/scheme.hpp"

namespace lanecert {

class LaneAlgebra;
struct ChainEntry;
struct VerifierScratch;

/// Verifier-side parameters (the constants of Theorem 1 for the target
/// pathwidth bound).
struct CoreVerifierParams {
  /// Upper bound on lane indices; certifies lanewidth < maxLanes and hence
  /// pathwidth <= maxLanes - 1 of the completion.  Chains longer than
  /// 2 * maxLanes + 2 entries are rejected (Observation 5.5).
  int maxLanes = 64;
  /// Max embedding paths through one edge (0 = unlimited); h(k+1) bounds
  /// honest labelings.
  int maxThrough = 0;
  /// Per-thread read-side memo in front of the sweep cache: validated
  /// entry encodings a thread has already seen hit WITHOUT touching the
  /// striped locks (near-root entries hash to few stripes, so heavily
  /// threaded sweeps would otherwise serialize there).  Verdicts are
  /// independent of this flag (cache hits only skip forced recomputation);
  /// the property tests flip it to assert exactly that.
  bool readMemo = true;
};

/// Monotonic counters of the sweep cache + read memo (diagnostics; the
/// contention claim behind the per-thread memo is measured, not assumed).
struct SweepCacheStats {
  std::uint64_t hits = 0;       ///< shared-cache probes that hit
  std::uint64_t misses = 0;     ///< shared-cache probes that missed
  std::uint64_t memoHits = 0;   ///< read-memo hits (no stripe lock taken)
  /// Stripe-lock acquisitions that found the lock held (try_lock failed
  /// and the probe had to wait).
  std::uint64_t stripeContention = 0;
  /// Encodings dropped by capacity eviction (least-recently-probed batch
  /// eviction; a nonzero value means the cache hit its growth bound and is
  /// recycling, not an error).
  std::uint64_t evictions = 0;
  std::size_t entries = 0;      ///< distinct validated encodings held
};

/// Sweep-level memo of chain entries whose pure (vertex-independent)
/// validation already passed.  Keyed by ENTRY ENCODING — decodeFrom is a
/// pure function of the bytes, so byte-equal encodings are structurally
/// equal entries and validate to the same (deterministic) verdict; a hit
/// can never conflate two entries that differ in any decoded field.
/// Non-canonical encodings of the same entry (padded varints) key
/// separately, which only ever costs a conservative re-validation.
/// Storing one contiguous byte string per entry also makes lookups a
/// single SIMD byte compare instead of a record-graph walk, and inserts a
/// flat copy instead of a deep pmr clone.  Thread-safe: lookups and
/// inserts take a stripe lock hashed on the entry's node id; stored
/// strings live on the global heap, so they outlive the per-thread decode
/// arenas the probes point into.  Entries stay valid for the lifetime of
/// the algebra/params they were validated under (the owning engine never
/// changes either), which is why a session can keep its cache warm across
/// re-verification sweeps.
class SweepEntryCache {
 public:
  SweepEntryCache();
  ~SweepEntryCache();

  SweepEntryCache(const SweepEntryCache&) = delete;
  SweepEntryCache& operator=(const SweepEntryCache&) = delete;

  /// True if an entry with this exact encoding already passed validation
  /// for node `nodeId`.  Counts a hit or miss, and counts stripe
  /// contention when the stripe lock was held by another thread.
  [[nodiscard]] bool containsValidated(std::int64_t nodeId,
                                       std::string_view entryBytes) const;
  /// Records an encoding as validated (flat copy; refreshes recency if
  /// present).  A full cache evicts its least-recently-probed entries in
  /// batches instead of growing without bound — pure memory management,
  /// never invalidation, so verdicts are unaffected.
  void markValidated(std::int64_t nodeId, std::string_view entryBytes);
  /// Number of distinct validated encodings held.
  [[nodiscard]] std::size_t size() const;
  /// Drops every entry (bounds memory; never required for correctness) and
  /// bumps the epoch so per-thread read memos self-invalidate.
  void clear();
  /// Bumped once per clear(); read memos compare against it.
  [[nodiscard]] std::uint64_t epoch() const;
  /// Process-unique identity of this cache instance (never reused, unlike
  /// the `this` pointer).  Thread-local read memos key on (id, epoch): the
  /// memo scratch is shared by every engine that checks on a thread, and
  /// distinct engines validate under distinct algebras/params, so a memo
  /// filled against one cache must never answer probes for another.
  [[nodiscard]] std::uint64_t id() const;
  /// Hit/miss/contention counters + entry count (memoHits stays 0 here;
  /// the engine folds in the per-thread memo counter).
  [[nodiscard]] SweepCacheStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The shareable core of the verifier: property + algebra + params + sweep
/// cache.  Immutable after construction except for the (internally locked)
/// cache, so any number of threads may call `check` concurrently as long as
/// each passes its own ThreadState.
class CoreVerifierEngine {
 public:
  explicit CoreVerifierEngine(PropertyPtr prop, CoreVerifierParams params = {});
  ~CoreVerifierEngine();

  CoreVerifierEngine(const CoreVerifierEngine&) = delete;
  CoreVerifierEngine& operator=(const CoreVerifierEngine&) = delete;

  /// Per-thread reusable verifier state: the decode arena plus the flat
  /// cross-certificate containers.  Allocated lazily on first use; reset
  /// per vertex, so steady-state checks stop allocating.
  class ThreadState {
   public:
    ThreadState();
    ~ThreadState();
    ThreadState(ThreadState&&) noexcept;
    ThreadState& operator=(ThreadState&&) noexcept;

   private:
    friend class CoreVerifierEngine;
    std::unique_ptr<VerifierScratch> impl_;
  };

  /// One vertex's local check; never throws (malformed labels reject).
  /// Safe to call concurrently with DISTINCT states.
  [[nodiscard]] bool check(const EdgeView& view, ThreadState& state) const;

  [[nodiscard]] const CoreVerifierParams& params() const { return params_; }
  /// Distinct entries validated so far (diagnostics / tests).
  [[nodiscard]] std::size_t sweepCacheSize() const;
  /// Drops the sweep cache (memory bound only; verdicts never depend on it).
  void clearSweepCache();
  /// Sweep cache counters with the per-thread read-memo hits folded in.
  [[nodiscard]] SweepCacheStats cacheStats() const;

 private:
  PropertyPtr prop_;
  CoreVerifierParams params_;
  std::shared_ptr<const LaneAlgebra> algebra_;
  mutable SweepEntryCache cache_;
  /// Read-memo hits across every ThreadState that checked through this
  /// engine (flushed once per vertex check, not per hit).
  mutable std::atomic<std::uint64_t> memoHits_{0};
};

/// Builds the local verifier for `prop`: a thin closure over a shared
/// CoreVerifierEngine and a thread_local ThreadState.  The engine's sweep
/// cache persists for the closure's lifetime — sound, because cached
/// validations are pure functions of entry bytes, so reuse across sweeps
/// (or across labelings) can never change a verdict.
[[nodiscard]] EdgeVerifier makeCoreVerifier(PropertyPtr prop,
                                            CoreVerifierParams params = {});

/// The exact constants of Theorem 1 for certifying φ ∧ (pathwidth <= k):
/// maxLanes = f(k+1) (Prop 4.6 lane bound for width-(k+1) representations)
/// and maxThrough = h(k+1) (the completion embedding congestion).  Honest
/// labelings of pathwidth-<=k graphs always pass; any accepted labeling
/// certifies that the real edges embed in a graph of lanewidth <= f(k+1).
[[nodiscard]] CoreVerifierParams theorem1Params(int k);

}  // namespace lanecert
