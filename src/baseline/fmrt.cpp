#include "baseline/fmrt.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "pathwidth/pathwidth.hpp"
#include "pls/codec.hpp"

namespace lanecert {

namespace {

/// One decomposition-tree record carried in vertex labels.
struct TreeRec {
  int lo = 0;
  int hi = 0;
  int mid = -1;  ///< -1 for leaves
  std::vector<std::uint64_t> boundary;  ///< slot order of `state`
  std::string state;
  std::vector<std::uint64_t> leftBoundary;
  std::string leftState;
  std::vector<std::uint64_t> rightBoundary;
  std::string rightState;

  void encodeTo(Encoder& enc) const {
    enc.u64(static_cast<std::uint64_t>(lo));
    enc.u64(static_cast<std::uint64_t>(hi));
    enc.i64(mid);
    auto ids = [&enc](const std::vector<std::uint64_t>& v) {
      enc.u64(v.size());
      for (std::uint64_t x : v) enc.u64(x);
    };
    ids(boundary);
    enc.bytes(state);
    ids(leftBoundary);
    enc.bytes(leftState);
    ids(rightBoundary);
    enc.bytes(rightState);
  }
  static TreeRec decodeFrom(Decoder& dec) {
    TreeRec r;
    r.lo = static_cast<int>(dec.u64());
    r.hi = static_cast<int>(dec.u64());
    r.mid = static_cast<int>(dec.i64());
    auto ids = [&dec] {
      std::vector<std::uint64_t> v;
      const std::uint64_t n = dec.u64();
      if (n > (1u << 16)) throw DecodeError{};
      for (std::uint64_t i = 0; i < n; ++i) v.push_back(dec.u64());
      return v;
    };
    r.boundary = ids();
    r.state = dec.bytes();
    r.leftBoundary = ids();
    r.leftState = dec.bytes();
    r.rightBoundary = ids();
    r.rightState = dec.bytes();
    return r;
  }
  [[nodiscard]] std::string encoded() const {
    Encoder enc;
    encodeTo(enc);
    return enc.take();
  }
};

int slotIndexOf(const std::vector<std::uint64_t>& slots, std::uint64_t id) {
  for (std::size_t i = 0; i < slots.size(); ++i) {
    if (slots[i] == id) return static_cast<int>(i);
  }
  throw DecodeError{};
}

/// Replays the deterministic merge of two child summaries, keeping exactly
/// the ids in `keep` (in derivation order).  Shared ids are identified.
std::pair<std::vector<std::uint64_t>, HomState> mergeChildren(
    const Property& prop, const std::vector<std::uint64_t>& leftB,
    const HomState& left, const std::vector<std::uint64_t>& rightB,
    const HomState& right, const std::set<std::uint64_t>& keep) {
  std::vector<std::uint64_t> slots = leftB;
  slots.insert(slots.end(), rightB.begin(), rightB.end());
  HomState s = prop.join(left, right);
  const std::set<std::uint64_t> leftSet(leftB.begin(), leftB.end());
  for (std::uint64_t id : rightB) {
    if (leftSet.count(id) == 0) continue;
    // Identify the left copy with the right copy (positions recomputed
    // because earlier identifications shift slots).
    int first = -1;
    int second = -1;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i] == id) {
        (first < 0 ? first : second) = static_cast<int>(i);
      }
    }
    if (second < 0) throw DecodeError{};
    s = prop.identify(s, first, second);
    slots.erase(slots.begin() + second);
  }
  for (int i = static_cast<int>(slots.size()) - 1; i >= 0; --i) {
    if (keep.count(slots[static_cast<std::size_t>(i)]) == 0) {
      s = prop.forget(s, i);
      slots.erase(slots.begin() + i);
    }
  }
  return {std::move(slots), std::move(s)};
}

/// Prover-side builder over a balanced bag-interval tree.
class FmrtBuilder {
 public:
  FmrtBuilder(const Graph& g, const IdAssignment& ids, const Property& prop,
              const PathDecomposition& pd)
      : g_(g), ids_(ids), prop_(prop), pd_(pd) {
    const auto n = static_cast<std::size_t>(g.numVertices());
    first_.assign(n, -1);
    for (std::size_t i = 0; i < pd.numBags(); ++i) {
      for (VertexId v : pd.bag(i)) {
        if (first_[static_cast<std::size_t>(v)] == -1) {
          first_[static_cast<std::size_t>(v)] = static_cast<int>(i);
        }
      }
    }
    edgesOfBag_.resize(pd.numBags());
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
      const Edge& edge = g.edge(e);
      const int bag = std::max(first_[static_cast<std::size_t>(edge.u)],
                               first_[static_cast<std::size_t>(edge.v)]);
      edgesOfBag_[static_cast<std::size_t>(bag)].push_back(e);
    }
  }

  /// Builds the subtree over bags [lo, hi]; returns (boundary, state) and
  /// records every node in records_.
  std::pair<std::vector<std::uint64_t>, HomState> build(int lo, int hi);

  [[nodiscard]] const TreeRec& record(int lo, int hi) const {
    return records_.at({lo, hi});
  }
  [[nodiscard]] int firstBag(VertexId v) const {
    return first_[static_cast<std::size_t>(v)];
  }

 private:
  std::set<std::uint64_t> boundaryIdSet(int lo, int hi) const {
    std::set<std::uint64_t> out;
    for (VertexId v : pd_.bag(static_cast<std::size_t>(lo))) out.insert(ids_.id(v));
    for (VertexId v : pd_.bag(static_cast<std::size_t>(hi))) out.insert(ids_.id(v));
    return out;
  }

  const Graph& g_;
  const IdAssignment& ids_;
  const Property& prop_;
  const PathDecomposition& pd_;
  std::vector<int> first_;
  std::vector<std::vector<EdgeId>> edgesOfBag_;
  std::map<std::pair<int, int>, TreeRec> records_;
};

std::pair<std::vector<std::uint64_t>, HomState> FmrtBuilder::build(int lo, int hi) {
  TreeRec rec;
  rec.lo = lo;
  rec.hi = hi;
  std::vector<std::uint64_t> boundary;
  HomState state;
  if (lo == hi) {
    // Leaf: the bag's vertices (sorted by id) plus its assigned edges.
    std::vector<VertexId> bag = pd_.bag(static_cast<std::size_t>(lo));
    std::sort(bag.begin(), bag.end(), [this](VertexId a, VertexId b) {
      return ids_.id(a) < ids_.id(b);
    });
    state = prop_.empty();
    for (VertexId v : bag) {
      state = prop_.addVertex(state);
      boundary.push_back(ids_.id(v));
    }
    for (EdgeId e : edgesOfBag_[static_cast<std::size_t>(lo)]) {
      const Edge& edge = g_.edge(e);
      state = prop_.addEdge(state, slotIndexOf(boundary, ids_.id(edge.u)),
                            slotIndexOf(boundary, ids_.id(edge.v)), kRealEdge);
    }
  } else {
    const int mid = lo + (hi - lo) / 2;
    rec.mid = mid;
    auto [leftB, leftS] = build(lo, mid);
    auto [rightB, rightS] = build(mid + 1, hi);
    std::tie(boundary, state) = mergeChildren(prop_, leftB, leftS, rightB,
                                              rightS, boundaryIdSet(lo, hi));
    rec.leftBoundary = std::move(leftB);
    rec.leftState = leftS.encoding();
    rec.rightBoundary = std::move(rightB);
    rec.rightState = rightS.encoding();
  }
  rec.boundary = boundary;
  rec.state = state.encoding();
  records_.emplace(std::make_pair(lo, hi), std::move(rec));
  return {std::move(boundary), std::move(state)};
}

}  // namespace

FmrtResult proveFmrt(const Graph& g, const IdAssignment& ids,
                     const Property& prop, const IntervalRepresentation* rep) {
  if (!isConnected(g)) {
    throw std::invalid_argument("proveFmrt: graph must be connected");
  }
  FmrtResult out;
  if (g.numVertices() == 0) {
    out.propertyHolds = prop.accepts(prop.empty());
    return out;
  }
  const IntervalRepresentation localRep =
      rep != nullptr ? *rep : bestIntervalRepresentation(g);
  const PathDecomposition pd = toPathDecomposition(localRep);
  FmrtBuilder builder(g, ids, prop, pd);
  const int hiBag = static_cast<int>(pd.numBags()) - 1;
  auto [rootB, rootS] = builder.build(0, hiBag);
  (void)rootB;
  if (!prop.accepts(rootS)) {
    out.propertyHolds = false;
    return out;
  }
  out.propertyHolds = true;

  out.labels.resize(static_cast<std::size_t>(g.numVertices()));
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    // Root-to-leaf record stack of this vertex's first bag.
    Encoder enc;
    std::vector<const TreeRec*> stack;
    int lo = 0;
    int hi = hiBag;
    const int target = builder.firstBag(v);
    while (true) {
      stack.push_back(&builder.record(lo, hi));
      if (lo == hi) break;
      const int mid = lo + (hi - lo) / 2;
      if (target <= mid) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    out.treeDepth = std::max(out.treeDepth, static_cast<int>(stack.size()));
    enc.u64(stack.size());
    for (const TreeRec* r : stack) r->encodeTo(enc);
    out.labels[static_cast<std::size_t>(v)] = enc.take();
  }
  for (const std::string& l : out.labels) {
    out.maxLabelBits = std::max(out.maxLabelBits, l.size() * 8);
    out.totalLabelBits += l.size() * 8;
  }
  return out;
}

VertexVerifier makeFmrtVerifier(PropertyPtr prop) {
  return [prop = std::move(prop)](const VertexView& view) -> bool {
    try {
      auto parse = [](std::string_view bytes) {
        Decoder dec(bytes);
        const std::uint64_t n = dec.u64();
        if (n == 0 || n > 64) throw DecodeError{};
        std::vector<TreeRec> recs;
        for (std::uint64_t i = 0; i < n; ++i) {
          recs.push_back(TreeRec::decodeFrom(dec));
        }
        if (!dec.atEnd()) throw DecodeError{};
        return recs;
      };
      const std::vector<TreeRec> own = parse(view.selfLabel);

      // Chain shape and merge recomputation.
      for (std::size_t i = 0; i < own.size(); ++i) {
        const TreeRec& r = own[i];
        if (r.lo > r.hi) return false;
        if (i + 1 < own.size()) {
          const TreeRec& child = own[i + 1];
          if (r.mid < r.lo || r.mid >= r.hi) return false;
          const bool isLeft = child.lo == r.lo && child.hi == r.mid;
          const bool isRight = child.lo == r.mid + 1 && child.hi == r.hi;
          if (!isLeft && !isRight) return false;
          if (isLeft && (child.boundary != r.leftBoundary ||
                         child.state != r.leftState)) {
            return false;
          }
          if (isRight && (child.boundary != r.rightBoundary ||
                          child.state != r.rightState)) {
            return false;
          }
        } else {
          if (r.lo != r.hi || r.mid != -1) return false;  // must end at a leaf
        }
        if (r.mid >= 0) {
          const HomState left = prop->decodeState(r.leftState);
          const HomState right = prop->decodeState(r.rightState);
          if (prop->slotCount(left) != static_cast<int>(r.leftBoundary.size()) ||
              prop->slotCount(right) != static_cast<int>(r.rightBoundary.size())) {
            return false;
          }
          const std::set<std::uint64_t> keep(r.boundary.begin(), r.boundary.end());
          auto [slots, state] = mergeChildren(*prop, r.leftBoundary, left,
                                              r.rightBoundary, right, keep);
          if (slots != r.boundary || state.encoding() != r.state) return false;
        }
      }
      // My leaf must contain me.
      const TreeRec& leaf = own.back();
      if (std::find(leaf.boundary.begin(), leaf.boundary.end(), view.selfId) ==
          leaf.boundary.end()) {
        return false;
      }
      // Root acceptance.
      if (own[0].lo != 0) return false;
      if (!prop->accepts(prop->decodeState(own[0].state))) return false;

      // Neighbor agreement on shared tree nodes.
      std::map<std::pair<int, int>, std::string> seen;
      for (const TreeRec& r : own) seen[{r.lo, r.hi}] = r.encoded();
      for (std::string_view nl : view.neighborLabels) {
        for (const TreeRec& r : parse(nl)) {
          const auto it = seen.find({r.lo, r.hi});
          if (it != seen.end() && it->second != r.encoded()) return false;
        }
      }
      return true;
    } catch (const std::exception&) {
      return false;
    }
  };
}

}  // namespace lanecert
