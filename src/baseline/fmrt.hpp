#pragma once
// Reimplementation of the Fraigniaud–Montealegre–Rapaport–Todinca scheme
// (Algorithmica 2024) at the level their paper specifies, as the O(log² n)
// comparison baseline for benchmark E1.
//
// Structure: a BALANCED binary decomposition tree over the bags of a path
// decomposition (split at the middle bag; a node covering bags [lo, hi] has
// boundary X_lo ∪ X_hi, width <= 3(k+1)); Courcelle-style hom states are
// computed bottom-up with the same Property algebra as the core scheme;
// every vertex stores the record stack of its leaf's O(log n) ancestors,
// each record carrying the node's boundary/state plus both children's —
// Θ(log n) records of Θ(k log n) bits = Θ(log² n)-bit labels.
//
// Fidelity note: the label SIZE and the completeness of the verifier are
// faithful to [FMR+24]; their low-congestion routing arguments (which make
// the scheme fully sound) are not reproduced — soundness of the O(log n)
// scheme is this repository's subject, the baseline exists for the size
// and shape comparison (see DESIGN.md §2).

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "interval/interval.hpp"
#include "mso/property.hpp"
#include "pls/scheme.hpp"

namespace lanecert {

/// Baseline prover output.
struct FmrtResult {
  bool propertyHolds = false;
  std::vector<std::string> labels;  ///< one per vertex
  int treeDepth = 0;                ///< decomposition-tree depth (O(log n))
  std::size_t maxLabelBits = 0;
  std::size_t totalLabelBits = 0;
};

/// Runs the baseline prover.  Precondition: g connected.
[[nodiscard]] FmrtResult proveFmrt(const Graph& g, const IdAssignment& ids,
                                   const Property& prop,
                                   const IntervalRepresentation* rep = nullptr);

/// Baseline verifier: record-chain consistency, merge recomputation via the
/// property algebra, neighbor agreement on shared records, and root
/// acceptance.
[[nodiscard]] VertexVerifier makeFmrtVerifier(PropertyPtr prop);

}  // namespace lanecert
