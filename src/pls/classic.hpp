#pragma once
// Classic textbook proof labeling schemes used as baselines and examples:
// the 1-bit bipartiteness scheme (Section 1.1's warm-up) and the trivial
// "ship the whole graph" scheme that certifies any decidable property with
// Θ(n log n)-bit labels.

#include <functional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "pls/scheme.hpp"

namespace lanecert {

/// 1-bit bipartiteness labels (the 2-coloring).  Precondition: g bipartite.
[[nodiscard]] std::vector<std::string> proveBipartite(const Graph& g);

/// The matching verifier: my color differs from every neighbor's.
[[nodiscard]] VertexVerifier bipartiteVerifier();

/// Trivial scheme: every vertex receives the full edge list of G (as id
/// pairs) plus its own position.  Certifies any property the verifier can
/// decide centrally.  Θ(n log n)-bit labels; used as the upper baseline in
/// benchmark E1.
[[nodiscard]] std::vector<std::string> proveTrivial(const Graph& g,
                                                    const IdAssignment& ids);

/// Verifier for the trivial scheme: all labels equal, my id appears, my
/// degree matches, and `decide` accepts the decoded graph.
[[nodiscard]] VertexVerifier trivialVerifier(
    std::function<bool(const Graph&)> decide);

}  // namespace lanecert
