#include "pls/classic.hpp"

#include <algorithm>
#include <map>

#include "graph/algorithms.hpp"
#include "pls/codec.hpp"

namespace lanecert {

std::vector<std::string> proveBipartite(const Graph& g) {
  const auto coloring = bipartition(g);
  if (!coloring) {
    throw std::invalid_argument("proveBipartite: graph is not bipartite");
  }
  std::vector<std::string> labels(static_cast<std::size_t>(g.numVertices()));
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    labels[static_cast<std::size_t>(v)] =
        (*coloring)[static_cast<std::size_t>(v)] == 0 ? "\0" : "\1";
    labels[static_cast<std::size_t>(v)].resize(1);
  }
  return labels;
}

VertexVerifier bipartiteVerifier() {
  return [](const VertexView& view) {
    if (view.selfLabel.size() != 1) return false;
    for (std::string_view nl : view.neighborLabels) {
      if (nl.size() != 1 || nl[0] == view.selfLabel[0]) return false;
    }
    return true;
  };
}

std::vector<std::string> proveTrivial(const Graph& g, const IdAssignment& ids) {
  Encoder enc;
  enc.u64(static_cast<std::uint64_t>(g.numVertices()));
  enc.u64(static_cast<std::uint64_t>(g.numEdges()));
  for (VertexId v = 0; v < g.numVertices(); ++v) enc.u64(ids.id(v));
  for (const Edge& e : g.edges()) {
    enc.u64(ids.id(e.u));
    enc.u64(ids.id(e.v));
  }
  return std::vector<std::string>(static_cast<std::size_t>(g.numVertices()),
                                  enc.str());
}

VertexVerifier trivialVerifier(std::function<bool(const Graph&)> decide) {
  return [decide = std::move(decide)](const VertexView& view) -> bool {
    for (std::string_view nl : view.neighborLabels) {
      if (nl != view.selfLabel) return false;  // everyone must hold one map
    }
    Decoder dec(view.selfLabel);
    const auto n = static_cast<VertexId>(dec.u64());
    const auto m = static_cast<EdgeId>(dec.u64());
    std::map<std::uint64_t, VertexId> index;
    for (VertexId v = 0; v < n; ++v) {
      const std::uint64_t id = dec.u64();
      if (!index.emplace(id, v).second) return false;  // duplicate id
    }
    const auto self = index.find(view.selfId);
    if (self == index.end()) return false;  // I must be on the map
    Graph g(n);
    int myDegree = 0;
    for (EdgeId e = 0; e < m; ++e) {
      const auto a = index.find(dec.u64());
      const auto b = index.find(dec.u64());
      if (a == index.end() || b == index.end()) return false;
      g.addEdge(a->second, b->second);
      myDegree += a->second == self->second || b->second == self->second;
    }
    // My local degree must match the claimed map.
    if (myDegree != static_cast<int>(view.neighborLabels.size())) return false;
    return decide(g);
  };
}

}  // namespace lanecert
