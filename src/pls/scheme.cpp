#include "pls/scheme.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/executor.hpp"
#include "runtime/label_store.hpp"

namespace lanecert {

namespace {

/// Shared sweep skeleton for both scheme kinds.  `checkVertex(v)` runs the
/// verifier on vertex v's (pre-built, zero-copy) view.  Vertices are swept
/// in contiguous ordered shards with per-shard reject lists, so the merged
/// `rejecting` vector is ascending and identical for every thread count.
template <typename CheckVertex>
SimulationResult sweep(const Graph& g, const LabelStore& store,
                       ParallelExecutor& exec, const CheckVertex& checkVertex) {
  SimulationResult r;
  r.maxLabelBits = store.maxLabelBits();
  r.totalLabelBits = store.totalLabelBits();

  const auto n = static_cast<std::size_t>(g.numVertices());
  std::vector<std::vector<VertexId>> shardRejects(
      static_cast<std::size_t>(exec.numThreads()));
  exec.forShards(n, [&](std::size_t shard, std::size_t begin,
                        std::size_t end) {
    std::vector<VertexId>& rejects = shardRejects[shard];
    for (std::size_t vi = begin; vi < end; ++vi) {
      const auto v = static_cast<VertexId>(vi);
      bool ok = false;
      try {
        ok = checkVertex(v);
      } catch (...) {
        ok = false;  // malformed certificates are rejections, never crashes
      }
      if (!ok) rejects.push_back(v);
    }
  });
  for (const std::vector<VertexId>& rejects : shardRejects) {
    r.rejecting.insert(r.rejecting.end(), rejects.begin(), rejects.end());
  }
  r.allAccept = r.rejecting.empty();
  return r;
}

}  // namespace

SimulationResult simulateEdgeScheme(const Graph& g, const IdAssignment& ids,
                                    const std::vector<std::string>& labels,
                                    const EdgeVerifier& verify,
                                    ParallelExecutor& exec) {
  if (labels.size() != static_cast<std::size_t>(g.numEdges())) {
    throw std::invalid_argument("simulateEdgeScheme: one label per edge required");
  }
  const LabelStore store(labels);
  const VertexLabelIndex index = buildIncidentEdgeIndex(g, store, exec);
  return sweep(g, store, exec, [&](VertexId v) {
    EdgeView view;
    view.selfId = ids.id(v);
    view.incidentLabels = index.row(v);
    return verify(view);
  });
}

SimulationResult simulateEdgeScheme(const Graph& g, const IdAssignment& ids,
                                    const std::vector<std::string>& labels,
                                    const EdgeVerifier& verify,
                                    const SimulationOptions& options) {
  ParallelExecutor exec(options.numThreads);
  return simulateEdgeScheme(g, ids, labels, verify, exec);
}

SimulationResult simulateVertexScheme(const Graph& g, const IdAssignment& ids,
                                      const std::vector<std::string>& labels,
                                      const VertexVerifier& verify,
                                      ParallelExecutor& exec) {
  if (labels.size() != static_cast<std::size_t>(g.numVertices())) {
    throw std::invalid_argument("simulateVertexScheme: one label per vertex required");
  }
  const LabelStore store(labels);
  const VertexLabelIndex index = buildNeighborIndex(g, store, exec);
  return sweep(g, store, exec, [&](VertexId v) {
    VertexView view;
    view.selfId = ids.id(v);
    view.selfLabel = store.view(static_cast<std::size_t>(v));
    view.neighborLabels = index.row(v);
    return verify(view);
  });
}

SimulationResult simulateVertexScheme(const Graph& g, const IdAssignment& ids,
                                      const std::vector<std::string>& labels,
                                      const VertexVerifier& verify,
                                      const SimulationOptions& options) {
  ParallelExecutor exec(options.numThreads);
  return simulateVertexScheme(g, ids, labels, verify, exec);
}

bool mutateLabels(std::vector<std::string>& labels, Mutation m, Rng& rng) {
  if (labels.empty()) return false;
  const auto pick = [&rng, &labels] {
    return static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<int>(labels.size()) - 1));
  };
  switch (m) {
    case Mutation::kFlipBit: {
      const std::size_t i = pick();
      if (labels[i].empty()) return false;
      const int byte = rng.uniformInt(0, static_cast<int>(labels[i].size()) - 1);
      const int bit = rng.uniformInt(0, 7);
      labels[i][static_cast<std::size_t>(byte)] =
          static_cast<char>(labels[i][static_cast<std::size_t>(byte)] ^ (1 << bit));
      return true;
    }
    case Mutation::kSwapPair: {
      const std::size_t i = pick();
      const std::size_t j = pick();
      if (i == j || labels[i] == labels[j]) return false;
      std::swap(labels[i], labels[j]);
      return true;
    }
    case Mutation::kTruncate: {
      const std::size_t i = pick();
      if (labels[i].empty()) return false;
      const int keep = rng.uniformInt(0, static_cast<int>(labels[i].size()) - 1);
      labels[i].resize(static_cast<std::size_t>(keep));
      return true;
    }
    case Mutation::kDuplicate: {
      const std::size_t i = pick();
      const std::size_t j = pick();
      if (i == j || labels[i] == labels[j]) return false;
      labels[i] = labels[j];
      return true;
    }
    case Mutation::kScramble: {
      const std::size_t i = pick();
      if (labels[i].empty()) return false;
      std::string s = labels[i];
      for (char& c : s) c = static_cast<char>(rng.uniformInt(0, 255));
      if (s == labels[i]) return false;
      labels[i] = std::move(s);
      return true;
    }
  }
  return false;
}

}  // namespace lanecert
