#include "pls/scheme.hpp"

#include <algorithm>
#include <stdexcept>

namespace lanecert {

namespace {

SimulationResult finish(SimulationResult r) {
  r.allAccept = r.rejecting.empty();
  return r;
}

std::size_t tallyBits(const std::vector<std::string>& labels,
                      SimulationResult& r) {
  std::size_t mx = 0;
  for (const std::string& l : labels) {
    mx = std::max(mx, l.size() * 8);
    r.totalLabelBits += l.size() * 8;
  }
  return mx;
}

}  // namespace

SimulationResult simulateEdgeScheme(const Graph& g, const IdAssignment& ids,
                                    const std::vector<std::string>& labels,
                                    const EdgeVerifier& verify) {
  if (labels.size() != static_cast<std::size_t>(g.numEdges())) {
    throw std::invalid_argument("simulateEdgeScheme: one label per edge required");
  }
  SimulationResult r;
  r.maxLabelBits = tallyBits(labels, r);
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    EdgeView view;
    view.selfId = ids.id(v);
    for (const Arc& a : g.arcs(v)) {
      view.incidentLabels.push_back(labels[static_cast<std::size_t>(a.edge)]);
    }
    // Views expose a multiset; sort to forbid order-based information.
    std::sort(view.incidentLabels.begin(), view.incidentLabels.end());
    bool ok = false;
    try {
      ok = verify(view);
    } catch (...) {
      ok = false;  // malformed certificates are rejections, never crashes
    }
    if (!ok) r.rejecting.push_back(v);
  }
  return finish(std::move(r));
}

SimulationResult simulateVertexScheme(const Graph& g, const IdAssignment& ids,
                                      const std::vector<std::string>& labels,
                                      const VertexVerifier& verify) {
  if (labels.size() != static_cast<std::size_t>(g.numVertices())) {
    throw std::invalid_argument("simulateVertexScheme: one label per vertex required");
  }
  SimulationResult r;
  r.maxLabelBits = tallyBits(labels, r);
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    VertexView view;
    view.selfId = ids.id(v);
    view.selfLabel = labels[static_cast<std::size_t>(v)];
    for (const Arc& a : g.arcs(v)) {
      view.neighborLabels.push_back(labels[static_cast<std::size_t>(a.to)]);
    }
    std::sort(view.neighborLabels.begin(), view.neighborLabels.end());
    bool ok = false;
    try {
      ok = verify(view);
    } catch (...) {
      ok = false;
    }
    if (!ok) r.rejecting.push_back(v);
  }
  return finish(std::move(r));
}

bool mutateLabels(std::vector<std::string>& labels, Mutation m, Rng& rng) {
  if (labels.empty()) return false;
  const auto pick = [&rng, &labels] {
    return static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<int>(labels.size()) - 1));
  };
  switch (m) {
    case Mutation::kFlipBit: {
      const std::size_t i = pick();
      if (labels[i].empty()) return false;
      const int byte = rng.uniformInt(0, static_cast<int>(labels[i].size()) - 1);
      const int bit = rng.uniformInt(0, 7);
      labels[i][static_cast<std::size_t>(byte)] =
          static_cast<char>(labels[i][static_cast<std::size_t>(byte)] ^ (1 << bit));
      return true;
    }
    case Mutation::kSwapPair: {
      const std::size_t i = pick();
      const std::size_t j = pick();
      if (i == j || labels[i] == labels[j]) return false;
      std::swap(labels[i], labels[j]);
      return true;
    }
    case Mutation::kTruncate: {
      const std::size_t i = pick();
      if (labels[i].empty()) return false;
      const int keep = rng.uniformInt(0, static_cast<int>(labels[i].size()) - 1);
      labels[i].resize(static_cast<std::size_t>(keep));
      return true;
    }
    case Mutation::kDuplicate: {
      const std::size_t i = pick();
      const std::size_t j = pick();
      if (i == j || labels[i] == labels[j]) return false;
      labels[i] = labels[j];
      return true;
    }
    case Mutation::kScramble: {
      const std::size_t i = pick();
      if (labels[i].empty()) return false;
      std::string s = labels[i];
      for (char& c : s) c = static_cast<char>(rng.uniformInt(0, 255));
      if (s == labels[i]) return false;
      labels[i] = std::move(s);
      return true;
    }
  }
  return false;
}

}  // namespace lanecert
