#include "pls/transform.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "pls/codec.hpp"

namespace lanecert {

std::vector<std::string> edgeLabelsToVertexLabels(
    const Graph& g, const IdAssignment& ids,
    const std::vector<std::string>& edgeLabels) {
  const DegeneracyOrientation orient = degeneracyOrient(g);
  std::vector<Encoder> encoders(static_cast<std::size_t>(g.numVertices()));
  std::vector<int> counts(static_cast<std::size_t>(g.numVertices()), 0);
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const VertexId head = orient.headOf[static_cast<std::size_t>(e)];
    const VertexId tail = g.edge(e).other(head);
    ++counts[static_cast<std::size_t>(tail)];
  }
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    encoders[static_cast<std::size_t>(v)].u64(
        static_cast<std::uint64_t>(counts[static_cast<std::size_t>(v)]));
  }
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const VertexId head = orient.headOf[static_cast<std::size_t>(e)];
    const VertexId tail = g.edge(e).other(head);
    Encoder& enc = encoders[static_cast<std::size_t>(tail)];
    enc.u64(ids.id(tail));
    enc.u64(ids.id(head));
    enc.bytes(edgeLabels[static_cast<std::size_t>(e)]);
  }
  std::vector<std::string> out;
  out.reserve(encoders.size());
  for (Encoder& enc : encoders) out.push_back(enc.take());
  return out;
}

VertexVerifier liftEdgeVerifier(EdgeVerifier inner) {
  return [inner = std::move(inner)](const VertexView& view) -> bool {
    // Reconstructed labels must outlive the inner call, so this verifier
    // owns their bytes; the EdgeView then borrows them, zero-copy.
    std::vector<std::string> storage;
    try {
      // Gather every triple naming this vertex, from its own label and
      // from each neighbor's label.
      auto scan = [&](std::string_view label) {
        Decoder dec(label);
        const std::uint64_t count = dec.u64();
        for (std::uint64_t i = 0; i < count; ++i) {
          const std::uint64_t a = dec.u64();
          const std::uint64_t b = dec.u64();
          std::string_view payload = dec.bytesView();
          if (a == view.selfId || b == view.selfId) {
            storage.emplace_back(payload);
          }
        }
      };
      scan(view.selfLabel);
      for (std::string_view nl : view.neighborLabels) scan(nl);
    } catch (const DecodeError&) {
      return false;
    }
    // Exactly one reconstructed label per incident edge.
    if (storage.size() != view.neighborLabels.size()) return false;
    std::vector<std::string_view> labels(storage.begin(), storage.end());
    std::sort(labels.begin(), labels.end());
    EdgeView ev;
    ev.selfId = view.selfId;
    ev.incidentLabels = labels;
    return inner(ev);
  };
}

}  // namespace lanecert
