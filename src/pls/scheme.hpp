#pragma once
// The proof-labeling-scheme framework (Section 1.1).
//
// A PLS is a pair (prover, verifier).  The prover is centralized and sees
// everything; the verifier is a pure function of a vertex's LOCAL VIEW:
// its identifier plus the multiset of labels on incident edges (edge
// schemes, Section 2.1) or its own label plus the multiset of neighbor
// labels (vertex schemes).  The simulator materializes the views — the only
// channel between the global configuration and a verifier — so locality is
// enforced by construction.
//
// `mutateLabels` implements the adversarial label corruptions used by the
// soundness tests and benchmark E6.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace lanecert {

class ParallelExecutor;

/// What a vertex sees in an EDGE-labeling scheme: its own identifier and
/// the labels on its incident edges (in unspecified order = multiset; the
/// simulator presents them sorted to forbid order-based information).
///
/// Views are ZERO-COPY: the label views borrow the simulator's backing
/// label store (or a caller-owned buffer) and are only valid during the
/// verifier call.  A verifier that needs label bytes beyond its own
/// invocation must copy them explicitly.
struct EdgeView {
  std::uint64_t selfId = 0;
  std::span<const std::string_view> incidentLabels;
};

/// What a vertex sees in a VERTEX-labeling scheme.  Same borrowing rules.
struct VertexView {
  std::uint64_t selfId = 0;
  std::string_view selfLabel;
  std::span<const std::string_view> neighborLabels;
};

/// A local verifier for edge schemes; must not throw (treat malformed
/// labels as reject).
using EdgeVerifier = std::function<bool(const EdgeView&)>;
/// A local verifier for vertex schemes.
using VertexVerifier = std::function<bool(const VertexView&)>;

/// Outcome of running a verifier at every vertex.
struct SimulationResult {
  bool allAccept = false;
  std::vector<VertexId> rejecting;   ///< vertices that rejected, ascending
  std::size_t maxLabelBits = 0;      ///< max encoded label size
  std::size_t totalLabelBits = 0;    ///< sum over all labels
};

/// Knobs for the simulation sweep.  The verifier is strictly local, so the
/// sweep shards vertices over threads; results are bit-identical to the
/// sequential path for every numThreads (contiguous ordered shards, merged
/// by shard index).  Verifiers must therefore be safe to call concurrently
/// from several threads — all bundled verifiers are pure functions of the
/// view (plus per-thread scratch).
struct SimulationOptions {
  int numThreads = 1;  ///< <= 0 means std::thread::hardware_concurrency()
};

/// Runs an edge-scheme verifier at every vertex.  `labels[e]` is the label
/// of EdgeId e.
[[nodiscard]] SimulationResult simulateEdgeScheme(
    const Graph& g, const IdAssignment& ids,
    const std::vector<std::string>& labels, const EdgeVerifier& verify,
    const SimulationOptions& options = {});

/// Runs a vertex-scheme verifier at every vertex.  `labels[v]` is the label
/// of vertex v.
[[nodiscard]] SimulationResult simulateVertexScheme(
    const Graph& g, const IdAssignment& ids,
    const std::vector<std::string>& labels, const VertexVerifier& verify,
    const SimulationOptions& options = {});

/// External-executor variants: identical results, but the sweep shards over
/// `exec` instead of constructing a private executor — the serving layer
/// multiplexes many verification jobs over one shared WorkerPool this way.
[[nodiscard]] SimulationResult simulateEdgeScheme(
    const Graph& g, const IdAssignment& ids,
    const std::vector<std::string>& labels, const EdgeVerifier& verify,
    ParallelExecutor& exec);
[[nodiscard]] SimulationResult simulateVertexScheme(
    const Graph& g, const IdAssignment& ids,
    const std::vector<std::string>& labels, const VertexVerifier& verify,
    ParallelExecutor& exec);

/// Kinds of adversarial label corruption used by soundness tests.
enum class Mutation {
  kFlipBit,    ///< flip one random bit of one label
  kSwapPair,   ///< exchange the labels of two random positions
  kTruncate,   ///< cut a random suffix off one label
  kDuplicate,  ///< overwrite one label with another's content
  kScramble,   ///< replace one label with random bytes of the same length
};

/// Applies one mutation; returns false when the mutation is a no-op on this
/// input (e.g. swapping identical labels), so callers can retry.
bool mutateLabels(std::vector<std::string>& labels, Mutation m, Rng& rng);

}  // namespace lanecert
