#pragma once
// The proof-labeling-scheme framework (Section 1.1).
//
// A PLS is a pair (prover, verifier).  The prover is centralized and sees
// everything; the verifier is a pure function of a vertex's LOCAL VIEW:
// its identifier plus the multiset of labels on incident edges (edge
// schemes, Section 2.1) or its own label plus the multiset of neighbor
// labels (vertex schemes).  The simulator materializes the views — the only
// channel between the global configuration and a verifier — so locality is
// enforced by construction.
//
// `mutateLabels` implements the adversarial label corruptions used by the
// soundness tests and benchmark E6.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace lanecert {

/// What a vertex sees in an EDGE-labeling scheme: its own identifier and
/// the labels on its incident edges (in unspecified order = multiset).
struct EdgeView {
  std::uint64_t selfId = 0;
  std::vector<std::string> incidentLabels;
};

/// What a vertex sees in a VERTEX-labeling scheme.
struct VertexView {
  std::uint64_t selfId = 0;
  std::string selfLabel;
  std::vector<std::string> neighborLabels;
};

/// A local verifier for edge schemes; must not throw (treat malformed
/// labels as reject).
using EdgeVerifier = std::function<bool(const EdgeView&)>;
/// A local verifier for vertex schemes.
using VertexVerifier = std::function<bool(const VertexView&)>;

/// Outcome of running a verifier at every vertex.
struct SimulationResult {
  bool allAccept = false;
  std::vector<VertexId> rejecting;   ///< vertices that rejected
  std::size_t maxLabelBits = 0;      ///< max encoded label size
  std::size_t totalLabelBits = 0;    ///< sum over all labels
};

/// Runs an edge-scheme verifier at every vertex.  `labels[e]` is the label
/// of EdgeId e.
[[nodiscard]] SimulationResult simulateEdgeScheme(
    const Graph& g, const IdAssignment& ids,
    const std::vector<std::string>& labels, const EdgeVerifier& verify);

/// Runs a vertex-scheme verifier at every vertex.  `labels[v]` is the label
/// of vertex v.
[[nodiscard]] SimulationResult simulateVertexScheme(
    const Graph& g, const IdAssignment& ids,
    const std::vector<std::string>& labels, const VertexVerifier& verify);

/// Kinds of adversarial label corruption used by soundness tests.
enum class Mutation {
  kFlipBit,    ///< flip one random bit of one label
  kSwapPair,   ///< exchange the labels of two random positions
  kTruncate,   ///< cut a random suffix off one label
  kDuplicate,  ///< overwrite one label with another's content
  kScramble,   ///< replace one label with random bytes of the same length
};

/// Applies one mutation; returns false when the mutation is a no-op on this
/// input (e.g. swapping identical labels), so callers can retry.
bool mutateLabels(std::vector<std::string>& labels, Mutation m, Rng& rng);

}  // namespace lanecert
