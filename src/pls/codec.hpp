#pragma once
// Compact binary serialization for certificate labels.
//
// Labels are byte strings; integers are LEB128 varints so that label sizes
// genuinely scale as O(log n) with the magnitudes stored (benchmark E1
// measures encoded label bits).  Reading past the end throws, which the
// verifiers translate into rejection (a malformed certificate must never
// crash the verifier).

#include <cstdint>
#include <stdexcept>
#include <string>

namespace lanecert {

/// Raised by Decoder on truncated or malformed input.
class DecodeError : public std::runtime_error {
 public:
  DecodeError() : std::runtime_error("malformed certificate") {}
};

/// Append-only varint/byte writer.
class Encoder {
 public:
  /// Unsigned LEB128.
  void u64(std::uint64_t x) {
    while (x >= 0x80) {
      out_.push_back(static_cast<char>((x & 0x7f) | 0x80));
      x >>= 7;
    }
    out_.push_back(static_cast<char>(x));
  }
  /// Small signed values via zigzag.
  void i64(std::int64_t x) {
    u64((static_cast<std::uint64_t>(x) << 1) ^
        static_cast<std::uint64_t>(x >> 63));
  }
  /// Length-prefixed byte string.
  void bytes(const std::string& s) {
    u64(s.size());
    out_ += s;
  }
  void boolean(bool b) { out_.push_back(b ? '\1' : '\0'); }

  [[nodiscard]] const std::string& str() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Matching reader; throws DecodeError on malformed input.
/// Owns a copy of the buffer so temporaries are safe to decode.
class Decoder {
 public:
  explicit Decoder(std::string data) : data_(std::move(data)) {}

  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t x = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size() || shift > 63) throw DecodeError{};
      const auto byte = static_cast<unsigned char>(data_[pos_++]);
      x |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return x;
  }
  [[nodiscard]] std::int64_t i64() {
    const std::uint64_t z = u64();
    return static_cast<std::int64_t>(z >> 1) ^ -static_cast<std::int64_t>(z & 1);
  }
  [[nodiscard]] std::string bytes() {
    const std::uint64_t len = u64();
    if (len > data_.size() - pos_) throw DecodeError{};
    std::string s = data_.substr(pos_, len);
    pos_ += len;
    return s;
  }
  [[nodiscard]] bool boolean() {
    if (pos_ >= data_.size()) throw DecodeError{};
    return data_[pos_++] != '\0';
  }
  [[nodiscard]] bool atEnd() const { return pos_ == data_.size(); }

 private:
  std::string data_;
  std::size_t pos_ = 0;
};

}  // namespace lanecert
