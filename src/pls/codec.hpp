#pragma once
// Compact binary serialization for certificate labels.
//
// Labels are byte strings; integers are LEB128 varints so that label sizes
// genuinely scale as O(log n) with the magnitudes stored (benchmark E1
// measures encoded label bits).  Reading past the end throws, which the
// verifiers translate into rejection (a malformed certificate must never
// crash the verifier).

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

namespace lanecert {

/// Raised by Decoder on truncated or malformed input.
class DecodeError : public std::runtime_error {
 public:
  DecodeError() : std::runtime_error("malformed certificate") {}
};

/// Append-only varint/byte writer.
class Encoder {
 public:
  /// Unsigned LEB128.
  void u64(std::uint64_t x) {
    while (x >= 0x80) {
      out_.push_back(static_cast<char>((x & 0x7f) | 0x80));
      x >>= 7;
    }
    out_.push_back(static_cast<char>(x));
  }
  /// Small signed values via zigzag.
  void i64(std::int64_t x) {
    u64((static_cast<std::uint64_t>(x) << 1) ^
        static_cast<std::uint64_t>(x >> 63));
  }
  /// Length-prefixed byte string.
  void bytes(std::string_view s) {
    u64(s.size());
    out_ += s;
  }
  /// Pre-encoded bytes, appended verbatim (no length prefix).  The prover
  /// uses this to splice cached record encodings into larger records.
  void raw(std::string_view s) { out_ += s; }
  void boolean(bool b) { out_.push_back(b ? '\1' : '\0'); }

  /// Capacity hint for callers that know the output size upfront.
  void reserve(std::size_t bytes) { out_.reserve(bytes); }

  [[nodiscard]] const std::string& str() const { return out_; }
  /// Moves the buffer out and leaves the encoder EMPTY (guaranteed — a
  /// moved-from string is only "valid but unspecified"), so one encoder
  /// may produce many records in a loop.
  [[nodiscard]] std::string take() {
    std::string s = std::move(out_);
    out_.clear();
    return s;
  }

 private:
  std::string out_;
};

/// Matching reader; throws DecodeError on malformed input.
///
/// The std::string constructor takes ownership of a copy, so temporaries
/// are safe to decode.  The std::string_view constructor BORROWS: zero-copy,
/// but the caller must keep the underlying bytes alive for the decoder's
/// lifetime (the simulators' label store guarantees exactly that).
class Decoder {
 public:
  explicit Decoder(std::string data) : owned_(std::move(data)), data_(owned_) {}
  explicit Decoder(std::string_view data) : data_(data), borrows_(true) {}
  // Forbidden: the string/string_view overloads are ambiguous for char
  // pointers, and strlen semantics would truncate binary input at NUL
  // bytes anyway.  Wrap literals in std::string or std::string_view.
  explicit Decoder(const char*) = delete;

  // data_ may view owned_, so a copied or moved Decoder would dangle.
  Decoder(const Decoder&) = delete;
  Decoder& operator=(const Decoder&) = delete;

  [[nodiscard]] std::uint64_t u64() {
#if defined(LANECERT_SIMD) && LANECERT_SIMD
    // SWAR fast path: one aligned-agnostic 16-bit load answers the two
    // dominant cases (certificate varints are overwhelmingly 1–2 bytes —
    // vertex ids, lane indices, list lengths) with masks instead of a
    // byte-serial continuation-bit loop.  Buffer tails (< 2 bytes left) and
    // >= 3-byte varints fall back to the scalar reference, so the decoded
    // value, the final position, and every DecodeError are identical to
    // u64Scalar() on all inputs (identity-tested in test_fuzz.cpp).
    if constexpr (std::endian::native == std::endian::little) {
      if (data_.size() - pos_ >= 2) {
        std::uint16_t w;
        std::memcpy(&w, data_.data() + pos_, 2);
        if ((w & 0x80u) == 0) {
          ++pos_;
          return w & 0x7fu;
        }
        if ((w & 0x8000u) == 0) {
          pos_ += 2;
          return (w & 0x7fu) |
                 (static_cast<std::uint64_t>((w >> 8) & 0x7fu) << 7);
        }
      }
    }
#endif
    return u64Scalar();
  }
  /// Byte-serial LEB128 reference: always compiled, identical contract to
  /// u64() (which dispatches here for everything the SWAR path skips).
  /// Hard-capped at 10 bytes (ceil(64 / 7)): an unterminated run of 0x80
  /// continuation bytes must not scan further into the buffer, and bits
  /// beyond the 64th must reject rather than silently truncate.
  [[nodiscard]] std::uint64_t u64Scalar() {
    std::uint64_t x = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= data_.size()) throw DecodeError{};
      const auto byte = static_cast<unsigned char>(data_[pos_++]);
      if (shift == 63 && (byte & ~1u) != 0) throw DecodeError{};
      x |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return x;
  }
  [[nodiscard]] std::int64_t i64() {
    const std::uint64_t z = u64();
    return static_cast<std::int64_t>(z >> 1) ^ -static_cast<std::int64_t>(z & 1);
  }
  [[nodiscard]] std::string bytes() { return std::string(bytesView()); }
  /// Zero-copy variant of bytes(); the view borrows the decoder's buffer.
  [[nodiscard]] std::string_view bytesView() {
    const std::uint64_t len = u64();
    if (len > data_.size() - pos_) throw DecodeError{};
    const std::string_view s = data_.substr(pos_, len);
    pos_ += len;
    return s;
  }
  [[nodiscard]] bool boolean() {
    if (pos_ >= data_.size()) throw DecodeError{};
    return data_[pos_++] != '\0';
  }
  [[nodiscard]] bool atEnd() const { return pos_ == data_.size(); }
  /// Current read offset into the buffer.
  [[nodiscard]] std::size_t pos() const { return pos_; }
  /// Bytes left to read.  Decode loops clamp container reserve() calls to
  /// this: a hostile length prefix may claim up to the list sanity cap,
  /// but every element consumes at least one byte, so pre-reserving more
  /// than remaining() elements can only ever buy memory for input that is
  /// guaranteed to reject.
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// True when this decoder BORROWS its buffer (string_view constructor):
  /// spans of the buffer outlive the decoder.  Record-decoding code uses
  /// this to decide whether source-byte spans may be handed out.
  [[nodiscard]] bool borrowsBuffer() const { return borrows_; }
  /// The full buffer being decoded; with borrowsBuffer(), substrings of it
  /// stay valid for the lifetime of the underlying bytes.
  [[nodiscard]] std::string_view buffer() const { return data_; }

 private:
  std::string owned_;      ///< backing copy when constructed from std::string
  std::string_view data_;  ///< the bytes being decoded
  std::size_t pos_ = 0;
  bool borrows_ = false;   ///< string_view ctor: data_ outlives the decoder
};

}  // namespace lanecert
