#pragma once
// Proposition 2.1: simulating an edge-labeling scheme with vertex labels on
// d-degenerate graph classes.
//
// Each edge's label is moved to the tail of a degeneracy orientation as a
// triple (ID(u), ID(v), label); a vertex recovers the multiset of labels of
// its incident edges from its own label and its neighbors' labels (every
// triple naming it), checks that their number equals its degree, and runs
// the edge verifier on the reconstructed view.  The blow-up is a factor of
// the degeneracy (O(1) for bounded pathwidth) plus the two identifiers.

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "pls/scheme.hpp"

namespace lanecert {

/// Moves per-edge labels to vertex labels along a degeneracy orientation.
[[nodiscard]] std::vector<std::string> edgeLabelsToVertexLabels(
    const Graph& g, const IdAssignment& ids,
    const std::vector<std::string>& edgeLabels);

/// Wraps an edge verifier into a vertex verifier over transformed labels.
[[nodiscard]] VertexVerifier liftEdgeVerifier(EdgeVerifier inner);

}  // namespace lanecert
