#pragma once
// The "pointing to v" scheme of Proposition 2.2: O(log n)-bit edge labels
// certifying that a vertex with a given identifier exists, via a spanning
// tree rooted at it.
//
// Robustness note.  The paper's sketch labels each edge with
// min(dist(root,u), dist(root,w)); as literally stated, a non-tree edge
// between adjacent BFS levels makes an honest vertex see two edges with its
// parent's label.  We implement the standard robust variant: each TREE edge
// additionally names its child endpoint, so the parent pointer is
// unambiguous and the "depth decreases along parent pointers" soundness
// argument goes through locally.  Labels remain O(log n) bits.

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "pls/codec.hpp"

namespace lanecert {

class ParallelExecutor;

/// Per-edge record of the pointer scheme.
struct PointerRecord {
  std::uint64_t rootId = 0;   ///< identifier of the target vertex
  bool treeEdge = false;      ///< whether this edge is in the spanning tree
  std::uint64_t childDepth = 0;  ///< tree edges: depth of the child endpoint
  std::uint64_t childId = 0;     ///< tree edges: identifier of the child

  void encodeTo(Encoder& enc) const;
  static PointerRecord decodeFrom(Decoder& dec);
  friend bool operator==(const PointerRecord&, const PointerRecord&) = default;
};

/// Honest prover: BFS spanning tree rooted at `target`; one record per edge.
/// Precondition: g connected.
[[nodiscard]] std::vector<PointerRecord> provePointer(const Graph& g,
                                                      const IdAssignment& ids,
                                                      VertexId target);

/// Parallel overload: frontier-parallel BFS with deterministic ordered
/// frontiers plus sharded record fills — records are BIT-IDENTICAL to the
/// serial prover for every thread count.
[[nodiscard]] std::vector<PointerRecord> provePointer(const Graph& g,
                                                      const IdAssignment& ids,
                                                      VertexId target,
                                                      ParallelExecutor& exec);

/// Local check at one vertex.  `expectedRoot`, when set, additionally pins
/// the root identifier (used when the surrounding certificate names it).
/// With no incident records the check degenerates to selfId == expectedRoot.
[[nodiscard]] bool checkPointerAt(std::uint64_t selfId,
                                  const std::vector<PointerRecord>& incident,
                                  std::optional<std::uint64_t> expectedRoot);

}  // namespace lanecert
