#include "pls/pointer.hpp"

#include "graph/algorithms.hpp"
#include "runtime/executor.hpp"

namespace lanecert {

namespace {

/// Shared record fill: tree-agnostic part of both prover overloads.
std::vector<PointerRecord> recordsFromTree(const Graph& g,
                                           const IdAssignment& ids,
                                           VertexId target,
                                           const SpanningTree& tree,
                                           ParallelExecutor* exec) {
  std::vector<PointerRecord> out(static_cast<std::size_t>(g.numEdges()));
  const std::uint64_t rootId = ids.id(target);
  const auto fillRoot = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t e = lo; e < hi; ++e) out[e].rootId = rootId;
  };
  // Every non-root vertex owns exactly one parent edge, so the tree-edge
  // fill writes disjoint record slots and shards freely.
  const auto fillTree = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      const EdgeId pe = tree.parentEdge[v];
      if (pe == kNoEdge) continue;
      PointerRecord& r = out[static_cast<std::size_t>(pe)];
      r.treeEdge = true;
      r.childDepth = static_cast<std::uint64_t>(tree.depth[v]);
      r.childId = ids.id(static_cast<VertexId>(v));
    }
  };
  if (exec != nullptr && exec->numThreads() > 1) {
    exec->forShards(out.size(), [&](std::size_t, std::size_t lo,
                                    std::size_t hi) { fillRoot(lo, hi); });
    exec->forShards(
        static_cast<std::size_t>(g.numVertices()),
        [&](std::size_t, std::size_t lo, std::size_t hi) { fillTree(lo, hi); });
  } else {
    fillRoot(0, out.size());
    fillTree(0, static_cast<std::size_t>(g.numVertices()));
  }
  return out;
}

}  // namespace

void PointerRecord::encodeTo(Encoder& enc) const {
  enc.u64(rootId);
  enc.boolean(treeEdge);
  if (treeEdge) {
    enc.u64(childDepth);
    enc.u64(childId);
  }
}

PointerRecord PointerRecord::decodeFrom(Decoder& dec) {
  PointerRecord r;
  r.rootId = dec.u64();
  r.treeEdge = dec.boolean();
  if (r.treeEdge) {
    r.childDepth = dec.u64();
    r.childId = dec.u64();
  }
  return r;
}

std::vector<PointerRecord> provePointer(const Graph& g, const IdAssignment& ids,
                                        VertexId target) {
  return recordsFromTree(g, ids, target, bfsTree(g, target), nullptr);
}

std::vector<PointerRecord> provePointer(const Graph& g, const IdAssignment& ids,
                                        VertexId target,
                                        ParallelExecutor& exec) {
  return recordsFromTree(g, ids, target, bfsTree(g, target, exec), &exec);
}

bool checkPointerAt(std::uint64_t selfId,
                    const std::vector<PointerRecord>& incident,
                    std::optional<std::uint64_t> expectedRoot) {
  if (incident.empty()) {
    // Isolated vertex: only valid when it is itself the target.
    return expectedRoot.has_value() && *expectedRoot == selfId;
  }
  const std::uint64_t root = incident[0].rootId;
  if (expectedRoot && *expectedRoot != root) return false;
  for (const PointerRecord& r : incident) {
    if (r.rootId != root) return false;  // everyone must agree on the target
  }
  if (selfId == root) {
    // The root has no parent edge, and all its tree edges go to depth-1
    // children.
    for (const PointerRecord& r : incident) {
      if (!r.treeEdge) continue;
      if (r.childId == selfId) return false;
      if (r.childDepth != 1) return false;
    }
    return true;
  }
  // Every other vertex has exactly one parent edge (a tree edge naming it
  // as the child) of depth d >= 1, and all remaining incident tree edges
  // are child edges of depth d + 1.
  std::uint64_t myDepth = 0;
  int parents = 0;
  for (const PointerRecord& r : incident) {
    if (r.treeEdge && r.childId == selfId) {
      ++parents;
      myDepth = r.childDepth;
    }
  }
  if (parents != 1 || myDepth == 0) return false;
  for (const PointerRecord& r : incident) {
    if (!r.treeEdge || r.childId == selfId) continue;
    if (r.childDepth != myDepth + 1) return false;
  }
  return true;
}

}  // namespace lanecert
