#include "pls/pointer.hpp"

#include "graph/algorithms.hpp"

namespace lanecert {

void PointerRecord::encodeTo(Encoder& enc) const {
  enc.u64(rootId);
  enc.boolean(treeEdge);
  if (treeEdge) {
    enc.u64(childDepth);
    enc.u64(childId);
  }
}

PointerRecord PointerRecord::decodeFrom(Decoder& dec) {
  PointerRecord r;
  r.rootId = dec.u64();
  r.treeEdge = dec.boolean();
  if (r.treeEdge) {
    r.childDepth = dec.u64();
    r.childId = dec.u64();
  }
  return r;
}

std::vector<PointerRecord> provePointer(const Graph& g, const IdAssignment& ids,
                                        VertexId target) {
  const SpanningTree tree = bfsTree(g, target);
  std::vector<PointerRecord> out(static_cast<std::size_t>(g.numEdges()));
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    PointerRecord& r = out[static_cast<std::size_t>(e)];
    r.rootId = ids.id(target);
  }
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    const EdgeId pe = tree.parentEdge[static_cast<std::size_t>(v)];
    if (pe == kNoEdge) continue;
    PointerRecord& r = out[static_cast<std::size_t>(pe)];
    r.treeEdge = true;
    r.childDepth = static_cast<std::uint64_t>(tree.depth[static_cast<std::size_t>(v)]);
    r.childId = ids.id(v);
  }
  return out;
}

bool checkPointerAt(std::uint64_t selfId,
                    const std::vector<PointerRecord>& incident,
                    std::optional<std::uint64_t> expectedRoot) {
  if (incident.empty()) {
    // Isolated vertex: only valid when it is itself the target.
    return expectedRoot.has_value() && *expectedRoot == selfId;
  }
  const std::uint64_t root = incident[0].rootId;
  if (expectedRoot && *expectedRoot != root) return false;
  for (const PointerRecord& r : incident) {
    if (r.rootId != root) return false;  // everyone must agree on the target
  }
  if (selfId == root) {
    // The root has no parent edge, and all its tree edges go to depth-1
    // children.
    for (const PointerRecord& r : incident) {
      if (!r.treeEdge) continue;
      if (r.childId == selfId) return false;
      if (r.childDepth != 1) return false;
    }
    return true;
  }
  // Every other vertex has exactly one parent edge (a tree edge naming it
  // as the child) of depth d >= 1, and all remaining incident tree edges
  // are child edges of depth d + 1.
  std::uint64_t myDepth = 0;
  int parents = 0;
  for (const PointerRecord& r : incident) {
    if (r.treeEdge && r.childId == selfId) {
      ++parents;
      myDepth = r.childDepth;
    }
  }
  if (parents != 1 || myDepth == 0) return false;
  for (const PointerRecord& r : incident) {
    if (!r.treeEdge || r.childId == selfId) continue;
    if (r.childDepth != myDepth + 1) return false;
  }
  return true;
}

}  // namespace lanecert
