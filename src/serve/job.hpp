#pragma once
// Request types of the batched serving pipeline.
//
// A job is fully self-contained: it carries its own (Graph, IdAssignment)
// pair plus whatever the request kind needs (property, labels, verifier
// params), so any number of jobs can be in flight concurrently with no
// shared mutable state — the service only shares the worker pool and its
// read-only caches between them.
//
// Content keys: the service deduplicates repeated requests (retries,
// fan-in) by EXACT content, never by hash alone — `proveJobKey` /
// `verifyJobKey` serialize everything that influences the job's output, so
// equal keys imply byte-identical results.  `planKey` covers only what the
// property-independent prover head depends on (graph topology + supplied
// representation), which is why one cached ProvePlan serves every
// (property, ids) pair over the same graph.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/verifier.hpp"
#include "graph/graph.hpp"
#include "interval/interval.hpp"
#include "mso/property.hpp"
#include "runtime/label_store.hpp"

namespace lanecert::serve {

/// Per-job fault-tolerance knobs, shared by every request kind.
struct JobOptions {
  /// Latest time the job may still be DISPATCHED.  Checked when the
  /// scheduler hands the job to a worker (and per batch in session
  /// drivers): an expired job fails its future with DeadlineExceededError
  /// without running any work.  Running jobs are never interrupted — the
  /// sweep/prove is the unit of work.  Absent = no deadline.
  ///
  /// Jobs carrying a deadline are excluded from result caching and request
  /// coalescing: sharing one computation between requests with different
  /// deadlines would let one caller's deadline fail another's future.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Total attempts for TransientError failures (session drivers only —
  /// prove/verify jobs are pure and cheap to resubmit from the client).
  /// 1 = no retry.
  int maxAttempts = 1;
  /// Sleep before the first retry; doubles per subsequent attempt.
  std::chrono::milliseconds retryBackoff{1};

  [[nodiscard]] bool expired() const {
    return deadline && std::chrono::steady_clock::now() > *deadline;
  }
};

/// "Label this graph for property φ" — the centralized prover as a request.
struct ProveJob {
  Graph graph;
  IdAssignment ids;
  PropertyPtr property;
  /// Known interval representation (e.g. from the generator that produced
  /// the graph); the prover computes one when absent.
  std::optional<IntervalRepresentation> rep;
  JobOptions options;
};

/// "Run the distributed verifier over this labeling" as a request.
///
/// Labels are the bulk of a verification request (hundreds of MB for large
/// graphs), so they ride as a SHARED IMMUTABLE payload: submission never
/// copies label bytes, and retries resubmitting the same buffer coalesce.
/// The contract is the usual interning one — the pointed-to vector must not
/// be mutated after first submission (the service pins cached payloads, so
/// an address is never reused while a cached result still refers to it).
struct VerifyJob {
  Graph graph;
  IdAssignment ids;
  std::shared_ptr<const std::vector<std::string>> labels;  ///< per EdgeId
  PropertyPtr property;
  CoreVerifierParams params{};
  /// Version of the label payload's CONTENT.  Participates in the cache
  /// key alongside the payload identity: a caller that rewrites a payload
  /// buffer in place (the versioned-LabelStore world makes that a
  /// legitimate move) bumps the version so mutation invalidates stale
  /// verify hits instead of serving them.  Callers that never mutate can
  /// leave it 0 — identity alone then pins the bytes as before.
  std::uint64_t labelsVersion = 0;
  JobOptions options;
};

/// "Run the MULTI-PROCESS distributed verifier over this labeling" as a
/// request (src/dist): the coordinator forks `workerProcesses` owner
/// partitions over a shared-memory image and merges their verdict plane.
/// Same payload contract as VerifyJob (shared immutable labels, identity +
/// version keyed).  The property rides as its REGISTRY NAME
/// (lanecert::propertyByName) because worker processes re-resolve it on
/// their side of the fork; submit validates the name synchronously.
///
/// Results are byte-identical to VerifyJob over the same content at every
/// (workerProcesses, threadsPerWorker) point — that is the dist layer's
/// contract — so dist and in-process verify requests share ONE result-cache
/// entry (distVerifyJobKey emits the verify key layout, with the process
/// knobs deliberately excluded).
struct DistVerifyJob {
  Graph graph;
  IdAssignment ids;
  std::shared_ptr<const std::vector<std::string>> labels;  ///< per EdgeId
  std::string property;  ///< registry name, e.g. "connectivity", "vc:3"
  CoreVerifierParams params{};
  /// Content version of the payload; see VerifyJob::labelsVersion.
  std::uint64_t labelsVersion = 0;
  /// Partition count K (owner processes forked by the coordinator).
  int workerProcesses = 4;
  /// Threads of each worker's private executor.
  int threadsPerWorker = 1;
  /// Worker re-forks tolerated INSIDE one attempt before the attempt fails
  /// with a TransientError (dist::DistOptions::maxWorkerRestarts);
  /// options.maxAttempts then bounds whole-job retries on top.
  int maxWorkerRestarts = 2;
  JobOptions options;
};

/// "Apply this edit batch to an open verification session and re-check the
/// dirty vertices" as a request.  The session handle comes from
/// LaneCertService::openVerifySession; edits are applied in order.  An
/// empty batch runs (or returns) the session's full sweep, so it doubles
/// as the initial-verification request.  Batches on one session execute in
/// submission order regardless of scheduler policy (the service runs one
/// driver per session at a time).
struct ReverifyJob {
  std::uint64_t session = 0;
  std::vector<EdgeLabelEdit> edits;
  JobOptions options;
};

/// Scheduling weight: rough single-thread work estimate used by the batch
/// scheduler to run small jobs ahead of large ones.  Only the ORDER matters,
/// so coarse proxies suffice (topology size for proving, total label bytes
/// for verification — chain validation cost tracks label volume).
[[nodiscard]] std::size_t estimatedCost(const ProveJob& job);
[[nodiscard]] std::size_t estimatedCost(const VerifyJob& job);
/// A dist job checks the same rows over the same bytes as an in-process
/// verify — the processes change WHERE, not how much.
[[nodiscard]] std::size_t estimatedCost(const DistVerifyJob& job);
/// Reverify cost tracks the edit batch (dirty rows re-checked + new label
/// bytes decoded), not the session's full graph — that is the point.  The
/// service substitutes the payload's full-sweep cost for a session's FIRST
/// batch, which runs the initial whole-graph sweep whatever its edit list.
[[nodiscard]] std::size_t estimatedCost(const ReverifyJob& job);

/// Exact serialization of everything a ProvePlan depends on: vertex count,
/// edge list (insertion order — plans are order-sensitive only through the
/// representation, but a stricter key is always safe), and the supplied
/// representation if any.
[[nodiscard]] std::string planKey(const Graph& g,
                                  const IntervalRepresentation* rep);

/// Dedup keys; equal keys imply equal output bytes.  Property identity is
/// its name() — every bundled property encodes its parameters there (e.g.
/// "3-colorability").  Prove keys serialize the full request content (it is
/// small).  Verify keys serialize everything EXCEPT the label bytes, which
/// enter by payload identity (pointer + length): hashing hundreds of MB per
/// submit would cost a sizable fraction of the verification itself, and
/// identity is exact under the immutability contract above.  Two distinct
/// buffers with equal bytes simply miss the cache — a perf miss, never a
/// wrong answer.
[[nodiscard]] std::string proveJobKey(const ProveJob& job);
[[nodiscard]] std::string verifyJobKey(const VerifyJob& job);
/// Emits the SAME bytes verifyJobKey would for the equivalent in-process
/// request (the resolved property's name() stands in for the PropertyPtr;
/// process-topology knobs are excluded because they cannot change the
/// output).  Equal keys, byte-identical results: a dist job and a plain
/// verify job over one payload coalesce onto one cache entry in either
/// order.  Requires a resolvable property name (submit checks first).
[[nodiscard]] std::string distVerifyJobKey(const DistVerifyJob& job);
/// Identity of a reverify request: session handle + exact edit bytes.
/// Reverify results are NEVER result-cached (each batch advances session
/// state), but duplicate submissions of the same batch at the same queue
/// position — front-end retries — coalesce onto one pending computation
/// through this key.
[[nodiscard]] std::string reverifyJobKey(const ReverifyJob& job);

}  // namespace lanecert::serve
