#include "serve/fault.hpp"

#include <mutex>
#include <utility>

namespace lanecert::serve {

namespace {

std::atomic<bool> gArmed{false};
std::mutex gMu;
FaultInjector::Hook gHook;  // guarded by gMu

}  // namespace

const char* faultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kDecode:
      return "decode";
    case FaultSite::kPlanBuild:
      return "planBuild";
    case FaultSite::kSweep:
      return "sweep";
    case FaultSite::kSnapshotLoad:
      return "snapshotLoad";
  }
  return "?";
}

void FaultInjector::arm(Hook hook) {
  std::lock_guard<std::mutex> lock(gMu);
  gHook = std::move(hook);
  gArmed.store(static_cast<bool>(gHook), std::memory_order_release);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(gMu);
  gHook = nullptr;
  gArmed.store(false, std::memory_order_release);
}

void FaultInjector::fire(FaultSite site) {
  if (!gArmed.load(std::memory_order_acquire)) return;
  // Copy under the lock, call outside it: a hook that sleeps (latency
  // injection) must not serialize every other site behind it.
  Hook hook;
  {
    std::lock_guard<std::mutex> lock(gMu);
    hook = gHook;
  }
  if (hook) hook(site);
}

bool FaultInjector::armed() {
  return gArmed.load(std::memory_order_acquire);
}

}  // namespace lanecert::serve
