#pragma once
// LaneCertService — batched multi-graph serving on one shared worker pool.
//
// One service owns one persistent WorkerPool.  Clients submit any number of
// concurrent ProveJob / VerifyJob requests, each fully self-contained; the
// batch scheduler admits them smallest-first onto the pool, where every
// job's shard waves (hom-state levels, record encoding, label assembly,
// verification sweeps) run through a borrowed ParallelExecutor over the
// SAME pool — thread wake-ups are amortized across requests instead of
// paying a pool spin-up per call.
//
// Determinism: a job's result is BIT-IDENTICAL to the standalone
// proveCore / simulateEdgeScheme path for every pool size, submission
// order, and interleaving.  The executor's contiguous ordered shards make
// per-job output independent of thread count, jobs share no mutable state,
// and both caches only ever substitute values that are deterministic pure
// functions of the request content:
//
//  * plan cache — the property-independent prover head (interval
//    representation, lane plan, construction sequence, hierarchy) keyed by
//    exact graph + supplied-representation bytes; one graph served under
//    many properties or id assignments plans once.  Cache MISSES coalesce
//    too: the first job runs the PIPELINED head (hierarchy streaming into
//    its waves) and publishes the plan the moment the head completes, so a
//    concurrent miss storm on one graph performs exactly one head build
//    and the waiters start their waves while the builder's are still
//    running;
//  * result cache + request coalescing — identical requests (exact content
//    key, never hash-only) share one computation and one result, whether
//    they arrive concurrently (coalesced) or after completion (cache hit).
//    Failed or cancelled computations are evicted so retries recompute.
//    Verify keys carry the label payload's content VERSION alongside its
//    identity, so a payload edited in place invalidates its stale verify
//    hits instead of serving them.
//
// Verification sessions (incremental re-verification): openVerifySession
// turns a VerifyJob into a persistent VerifySession — the labels are copied
// into a session-owned versioned LabelStore, and subsequent ReverifyJobs
// apply edit batches and re-check only the dirty vertices, with verdicts
// byte-identical to a fresh full sweep over the current labels.  Batches on
// ONE session run strictly in submission order: the registry runs at most
// one scheduler-admitted driver per session at a time (so the smallest-
// first scheduler can never reorder a session's state mutations), while
// different sessions' drivers interleave freely with all other jobs.
// Duplicate submissions of the batch at the queue tail (front-end retries)
// coalesce onto one pending computation via reverifyJobKey.
//
// Shutdown: the destructor DRAINS — every submitted job completes and every
// future becomes ready.  cancelPending() instead discards jobs that have
// not started; their futures fail with CancelledError (for a discarded
// session driver, every batch queued on that session fails).
//
// Fault tolerance (see serve/errors.hpp for the taxonomy): per-job
// deadlines fail un-dispatched jobs with DeadlineExceededError; admission
// control (ServiceOptions::maxQueueDepth) turns submit* calls away with a
// synchronous RejectedError + retry-after hint; session drivers retry
// TransientError batch failures up to JobOptions::maxAttempts with doubling
// backoff (edit batches are absolute label rewrites, so re-running one is
// idempotent).  The invariant all of it preserves: every future the service
// ever RETURNED resolves — with a value or a typed error — even under
// injected faults (serve/fault.hpp) at every stage boundary.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/prover.hpp"
#include "core/verify_session.hpp"
#include "pls/scheme.hpp"
#include "runtime/executor.hpp"
#include "runtime/topology.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/errors.hpp"
#include "serve/job.hpp"

namespace lanecert::snapshot {
class SnapshotStore;
}  // namespace lanecert::snapshot

namespace lanecert::serve {

struct ServiceOptions {
  /// Worker threads of the shared pool; <= 0 resolves to the hardware
  /// concurrency (at least 1 — jobs run on pool threads, never on the
  /// submitter's).
  int numThreads = 0;
  /// Max jobs in flight at once; <= 0 resolves to the pool size.
  int maxConcurrentJobs = 0;
  bool enablePlanCache = true;
  bool enableResultCache = true;
  std::size_t maxCachedPlans = 16;
  std::size_t maxCachedResults = 64;
  /// Topology awareness: detect the machine's NUMA layout at construction,
  /// pin pool workers round-robin across nodes, and hand the topology to
  /// every verification session (which mirrors its label plane per node —
  /// see runtime/numa_mirror.hpp).  Single-node machines make all of it a
  /// no-op; results are bit-identical either way, so the switch exists for
  /// A/B measurement, not safety.
  bool numaAware = true;
  /// Admission control: when > 0 and the scheduler backlog (admitted, not
  /// yet started jobs) has reached this depth, submit* throws RejectedError
  /// synchronously instead of queueing — with a retry-after hint scaled by
  /// the backlog.  0 = unlimited (the pre-backpressure behaviour).
  std::size_t maxQueueDepth = 0;
  /// Warm-start persistence (src/snapshot): non-empty enables a
  /// content-addressed plan snapshot store in this directory.  On a plan
  /// cache miss the service tries to mmap the plan from disk BEFORE
  /// building (stats: snapshotHits/snapshotMisses/snapshotLoadMs); after a
  /// fresh build it persists the plan write-behind on the store's own
  /// writer thread.  Corrupt, truncated, or stale files are rejected by
  /// the loader and degrade to a fresh build — never an error.
  std::string snapshotDir;
};

/// Monotonic service counters (snapshot via stats()).
struct ServiceStats {
  std::uint64_t proveJobsCompleted = 0;
  std::uint64_t verifyJobsCompleted = 0;
  /// Multi-process verification jobs (submitDistVerify) that completed.
  std::uint64_t distVerifyJobsCompleted = 0;
  /// Worker-process deaths observed across all dist jobs (each absorbed by
  /// the coordinator's re-fork + journal replay when within budget)...
  std::uint64_t distWorkerDeaths = 0;
  /// ...and the successful re-forks that absorbed them.
  std::uint64_t distWorkerRestarts = 0;
  std::uint64_t planCacheHits = 0;
  std::uint64_t resultCacheHits = 0;  ///< includes coalesced in-flight hits
  /// Prover head builds actually RUN (pipelined, on a cache miss).  A
  /// cache-miss storm on one graph bumps this exactly once.
  std::uint64_t planBuilds = 0;
  /// Cache-miss jobs that joined an IN-FLIGHT head build instead of
  /// running their own (they receive the plan the moment the builder's
  /// head completes, before its waves finish).
  std::uint64_t planBuildsCoalesced = 0;
  /// Cancelled requests: one per discarded prove/verify job, one per
  /// reverify batch failed by a discarded session driver.
  std::uint64_t cancelledJobs = 0;
  /// submit* calls turned away by admission control (RejectedError).
  std::uint64_t rejectedJobs = 0;
  /// Jobs/batches whose deadline passed before dispatch
  /// (DeadlineExceededError; the work never ran).
  std::uint64_t deadlineExpiredJobs = 0;
  /// TransientError retries performed by session drivers (attempts beyond
  /// each batch's first).
  std::uint64_t transientRetries = 0;
  std::uint64_t sessionsOpened = 0;
  std::uint64_t reverifyBatchesCompleted = 0;
  /// Sweep-entry-cache counters summed over the OPEN verification sessions
  /// at snapshot time (each session's engine keeps its own monotonic
  /// counters; closing a session drops its contribution).
  std::uint64_t sweepCacheHits = 0;
  std::uint64_t sweepCacheMisses = 0;
  /// Per-thread read-memo hits: validations skipped without touching the
  /// striped locks at all.
  std::uint64_t sweepCacheMemoHits = 0;
  /// Stripe-lock probes that found the lock held (the contention the read
  /// memo exists to avoid).
  std::uint64_t sweepCacheStripeContention = 0;
  /// Plan snapshot store (zero unless ServiceOptions::snapshotDir is set):
  /// plan-cache misses answered from a validated on-disk snapshot...
  std::uint64_t snapshotHits = 0;
  /// ...and misses that fell through to a fresh build (no file, or the
  /// loader rejected it).
  std::uint64_t snapshotMisses = 0;
  /// Cumulative wall-clock ms spent in snapshot load attempts (hits AND
  /// misses; divide by the counters for a mean).
  double snapshotLoadMs = 0;
};

class LaneCertService {
 public:
  explicit LaneCertService(ServiceOptions options = {});
  /// Drains: blocks until every submitted job has completed.
  ~LaneCertService();

  LaneCertService(const LaneCertService&) = delete;
  LaneCertService& operator=(const LaneCertService&) = delete;

  /// Queues a prove request; the future carries the full CoreProveResult
  /// (or the prover's exception).  Safe to call from any thread.  Throws
  /// RejectedError synchronously when admission control is on and the
  /// backlog is full.
  std::shared_future<CoreProveResult> submitProve(ProveJob job);
  /// Queues a verification request.  Throws RejectedError like submitProve.
  std::shared_future<SimulationResult> submitVerify(VerifyJob job);
  /// Queues a MULTI-PROCESS verification request (src/dist): the job runs a
  /// forked coordinator/worker sweep whose result is byte-identical to
  /// submitVerify over the same content, so the two share one result-cache
  /// entry.  Worker-process deaths are absorbed by the coordinator
  /// (re-fork + journal replay) up to the job's maxWorkerRestarts; past
  /// that the attempt fails as a TransientError and the job is retried up
  /// to JobOptions::maxAttempts with doubling backoff before the future
  /// fails.  Throws std::invalid_argument synchronously for an unknown
  /// property name or a null payload; RejectedError like submitProve.
  std::shared_future<SimulationResult> submitDistVerify(DistVerifyJob job);

  /// Opens a persistent verification session over the job's configuration;
  /// the label payload is COPIED into the session's own versioned store, so
  /// the caller's buffer is never touched by edits.  Cheap — no sweep runs
  /// until the first ReverifyJob.  Throws std::invalid_argument on a null
  /// payload or a label-count mismatch.
  std::uint64_t openVerifySession(VerifyJob job);
  /// Queues a re-verification batch on an open session (FIFO per session;
  /// an empty batch runs or refreshes the full sweep).  The future carries
  /// the whole-graph SimulationResult over the post-edit labels.  Throws
  /// std::invalid_argument for an unknown/closed session handle.
  std::shared_future<SimulationResult> submitReverify(ReverifyJob job);
  /// Current store version of an open session (0 = never edited).
  [[nodiscard]] std::uint64_t sessionStoreVersion(std::uint64_t session) const;
  /// Sweep-cache counters of ONE open session (throws std::invalid_argument
  /// for an unknown/closed handle).  Snapshot of relaxed atomics: exact
  /// once the session is quiescent, approximate while a sweep runs.
  [[nodiscard]] SweepCacheStats sessionCacheStats(std::uint64_t session) const;
  /// Epoch slots held by ONE open session's label store (soak memory
  /// metric; bounded by the session's auto-compaction).  Same handle and
  /// quiescence caveats as sessionCacheStats.
  [[nodiscard]] std::size_t sessionEpochSlots(std::uint64_t session) const;
  /// Closes a session: the handle becomes invalid for NEW submissions;
  /// batches already queued still complete.  Idempotent.
  void closeVerifySession(std::uint64_t session);

  /// Blocks until no job is pending or running.
  void drain();
  /// Blocks until every write-behind snapshot persist enqueued so far is on
  /// disk.  No-op without ServiceOptions::snapshotDir.  (The destructor
  /// flushes implicitly — the store drains its own writer thread.)
  void flushSnapshotWrites();
  /// Discards not-yet-started jobs (their futures throw CancelledError);
  /// returns how many were discarded.  Running jobs finish normally.
  std::size_t cancelPending();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] int poolWorkers() const { return pool_.workerCount(); }

 private:
  /// One open verification session.  `mu` guards the queue, the running
  /// flag, and the version mirror; the VerifySession itself is only ever
  /// touched by the (single) active driver, so it needs no lock of its
  /// own.  Kept alive by shared_ptr: a driver finishing after close still
  /// has valid state.
  struct VerifySessionEntry {
    struct PendingBatch {
      std::vector<EdgeLabelEdit> edits;
      std::string key;  ///< reverifyJobKey, empty when caching is off
      JobOptions options;
      std::shared_ptr<std::promise<SimulationResult>> promise;
      std::shared_future<SimulationResult> future;
    };
    std::mutex mu;
    std::unique_ptr<VerifySession> session;
    std::deque<PendingBatch> queue;
    bool running = false;           ///< a driver is admitted or active
    bool sweptMirror = false;       ///< session completed a full sweep
    std::uint64_t versionMirror = 0;  ///< store version, readable under mu
    /// Scheduling weight used while the session has not yet COMPLETED a
    /// full sweep: such batches run the initial whole-graph sweep whatever
    /// their edit lists say — costing them like the edits alone would
    /// admit a whole-graph sweep as the cheapest job in the system.
    /// Computed at open time from the payload, mirroring
    /// estimatedCost(VerifyJob).
    std::size_t fullSweepCost = 0;
  };

  template <typename T>
  struct ResultCache {
    struct Slot {
      std::shared_future<T> future;
      /// Keeps identity-keyed payloads (verify labels) alive while the
      /// entry exists, so a key can never alias a recycled address.
      std::shared_ptr<const void> pin;
    };
    std::mutex mu;
    std::unordered_map<std::string, Slot> entries;
    std::deque<std::string> completed;  ///< eviction order (done entries only)
  };

  CoreProveResult runProve(const ProveJob& job);
  SimulationResult runVerify(const VerifyJob& job);
  /// Attempt loop of submitDistVerify: runs the dist coordinator, maps an
  /// exhausted worker-restart budget (dist::WorkerFailure) onto
  /// TransientError, and retries per the job's JobOptions.  Folds each
  /// attempt's worker death/restart counters into the service stats.
  SimulationResult runDistVerify(const DistVerifyJob& job);
  /// Plan-cache-miss snapshot probe: null when no store is configured, the
  /// file is absent, or validation rejects it.  Never throws (an injected
  /// kSnapshotLoad fault or I/O error degrades to a miss); accounts
  /// snapshotHits/snapshotMisses/snapshotLoadMs.
  [[nodiscard]] std::shared_ptr<const ProvePlan> loadSnapshot(
      const Graph& g, const IntervalRepresentation* rep);
  /// Completes an in-flight head build: stores the plan in the completed
  /// cache (with eviction), drops the in-flight entry, and wakes waiters.
  void publishPlan(const std::string& key,
                   const std::shared_ptr<std::promise<
                       std::shared_ptr<const ProvePlan>>>& promise,
                   const std::shared_ptr<const ProvePlan>& plan);
  [[nodiscard]] std::shared_ptr<VerifySessionEntry> findSession(
      std::uint64_t session) const;
  void runSessionDriver(const std::shared_ptr<VerifySessionEntry>& entry);
  void cancelSessionQueue(const std::shared_ptr<VerifySessionEntry>& entry);

  template <typename T, typename Job, typename Run>
  std::shared_future<T> submitImpl(ResultCache<T>& cache, std::string key,
                                   std::shared_ptr<const void> pin, Job job,
                                   Run run);
  template <typename T>
  void finishCacheEntry(ResultCache<T>& cache, const std::string& key,
                        bool success);
  void bump(std::uint64_t ServiceStats::* counter);
  /// Admission control: throws RejectedError (and bumps rejectedJobs) when
  /// maxQueueDepth > 0 and the scheduler backlog has reached it.
  void admitOrReject();

  const ServiceOptions options_;
  /// Detected once at construction (numaAware only); declared before the
  /// pool so worker pinning can read it during pool construction.
  const NumaTopology topo_;
  WorkerPool pool_;
  /// Null unless options_.snapshotDir is set.  Owns its own writer thread
  /// (never the service pool); declared before sched_ so in-flight jobs can
  /// still persist while the scheduler drains during destruction.
  std::unique_ptr<snapshot::SnapshotStore> snapshots_;

  std::mutex planMu_;
  std::unordered_map<std::string, std::shared_ptr<const ProvePlan>> plans_;
  std::deque<std::string> planOrder_;
  /// Head builds currently running: cache-miss storms on one graph
  /// coalesce onto the first job's pipelined build through these futures
  /// (fulfilled at HEAD completion, not job completion).
  std::unordered_map<std::string,
                     std::shared_future<std::shared_ptr<const ProvePlan>>>
      planInFlight_;

  ResultCache<CoreProveResult> proveCache_;
  ResultCache<SimulationResult> verifyCache_;

  mutable std::mutex sessionsMu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<VerifySessionEntry>>
      sessions_;
  std::uint64_t nextSessionId_ = 1;

  mutable std::mutex statsMu_;
  ServiceStats stats_;

  BatchScheduler sched_;  ///< declared last: first to drain on destruction
};

}  // namespace lanecert::serve
