#pragma once
// Job admission for the serving pipeline.
//
// The scheduler sits between submit() and the shared WorkerPool: pending
// jobs wait in a smallest-estimated-cost-first queue (FIFO among equals),
// and at most `maxConcurrent` drivers run on the pool at once.  Two rules
// make small jobs immune to convoy effects behind large ones:
//
//  * admission order — a cheap job submitted after an expensive one
//    overtakes it while both are still pending;
//  * wave priority — in-flight jobs' shard tasks enter the pool queue at
//    the FRONT (ParallelExecutor::forShards posts urgent), so started waves
//    finish before the pool picks up the next queued driver.
//
// Pure smallest-first starves: under a steady stream of small jobs a large
// one could wait forever (every newcomer overtakes it).  An aging credit
// bounds that — each dispatch that bypasses the OLDEST pending job bumps
// that job's credit, and once the credit reaches kMaxBypass the oldest job
// is dispatched next regardless of cost.  Any job therefore waits at most
// (kMaxBypass + 1) dispatches once it becomes the oldest, and queue
// positions only ever shrink, so every job eventually runs.
//
// Every submitted job is eventually resolved exactly once: `run` on a pool
// thread, or `cancel` inline from cancelPending() for jobs that never
// started.  drain() blocks until the scheduler is idle.

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <map>
#include <mutex>
#include <utility>

#include "runtime/executor.hpp"

namespace lanecert::serve {

class BatchScheduler {
 public:
  /// `maxConcurrent <= 0` resolves to pool.workerCount() (never below 1).
  BatchScheduler(WorkerPool& pool, int maxConcurrent);
  /// Drains; the pool must still be alive (the service owns both and
  /// declares the scheduler after the pool).
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Queues a job.  `run` executes on a pool thread and must not throw
  /// (wrap the real work and route errors into the job's promise);
  /// `cancel` is invoked instead — inline — if the job is discarded by
  /// cancelPending() before it started.
  void submit(std::size_t cost, std::function<void()> run,
              std::function<void()> cancel);

  /// Blocks until no job is pending or in flight.
  void drain();

  /// Discards every job that has not started, invoking its `cancel`
  /// callback; running jobs are unaffected.  Returns how many were
  /// cancelled.
  std::size_t cancelPending();

  [[nodiscard]] int maxConcurrent() const { return maxConcurrent_; }

  /// Jobs admitted but not yet started (the backlog admission control in
  /// LaneCertService bounds).  Running jobs do not count.
  [[nodiscard]] std::size_t pendingCount();

  /// Dispatches that may bypass the oldest pending job before it is forced
  /// to the front of the queue.
  static constexpr std::size_t kMaxBypass = 4;

 private:
  struct Entry {
    std::function<void()> run;
    std::function<void()> cancel;
    std::size_t bypassed = 0;  ///< aging credit while this job is oldest
  };
  using Key = std::pair<std::size_t, std::uint64_t>;  ///< (cost, seq)

  /// Starts pending jobs while slots are free.  Requires mu_ held.
  void dispatchLocked();
  void onJobFinished();

  WorkerPool& pool_;
  const int maxConcurrent_;

  std::mutex mu_;
  std::condition_variable idle_;
  std::map<Key, Entry> pending_;
  std::map<std::uint64_t, Key> bySeq_;  ///< submission order -> queue key
  std::uint64_t nextSeq_ = 0;
  int inFlight_ = 0;
};

}  // namespace lanecert::serve
