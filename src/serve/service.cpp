#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "core/verifier.hpp"
#include "dist/dist_verifier.hpp"
#include "serve/fault.hpp"
#include "snapshot/snapshot.hpp"

namespace lanecert::serve {

LaneCertService::LaneCertService(ServiceOptions options)
    : options_(options),
      topo_(options.numaAware ? NumaTopology::detect()
                              : NumaTopology::singleNode()),
      pool_(std::max(1, resolveThreadCount(options.numThreads)), &topo_),
      snapshots_(options.snapshotDir.empty()
                     ? nullptr
                     : std::make_unique<snapshot::SnapshotStore>(
                           options.snapshotDir)),
      sched_(pool_, options.maxConcurrentJobs) {}

LaneCertService::~LaneCertService() = default;  // sched_ drains first

void LaneCertService::drain() { sched_.drain(); }

void LaneCertService::flushSnapshotWrites() {
  if (snapshots_) snapshots_->flushWrites();
}

std::shared_ptr<const ProvePlan> LaneCertService::loadSnapshot(
    const Graph& g, const IntervalRepresentation* rep) {
  if (!snapshots_) return nullptr;
  const auto t0 = std::chrono::steady_clock::now();
  std::shared_ptr<const ProvePlan> plan;
  try {
    // Fired INSIDE the try: a snapshot fault (or any load error) must
    // degrade to a fresh build, never fail the prove.
    FaultInjector::fire(FaultSite::kSnapshotLoad);
    plan = snapshots_->tryLoad(g, rep);
  } catch (...) {
    plan = nullptr;
  }
  const std::chrono::duration<double, std::milli> elapsed =
      std::chrono::steady_clock::now() - t0;
  std::lock_guard<std::mutex> lock(statsMu_);
  stats_.snapshotLoadMs += elapsed.count();
  if (plan != nullptr) {
    ++stats_.snapshotHits;
  } else {
    ++stats_.snapshotMisses;
  }
  return plan;
}

std::size_t LaneCertService::cancelPending() { return sched_.cancelPending(); }

ServiceStats LaneCertService::stats() const {
  ServiceStats s;
  {
    std::lock_guard<std::mutex> lock(statsMu_);
    s = stats_;
  }
  // Sweep-cache counters live in the session engines (relaxed atomics);
  // sum the open sessions at snapshot time.  Reading a session's counters
  // needs no entry->mu — they are engine atomics, safe during a sweep.
  std::lock_guard<std::mutex> lock(sessionsMu_);
  for (const auto& [id, entry] : sessions_) {
    const SweepCacheStats cs = entry->session->cacheStats();
    s.sweepCacheHits += cs.hits;
    s.sweepCacheMisses += cs.misses;
    s.sweepCacheMemoHits += cs.memoHits;
    s.sweepCacheStripeContention += cs.stripeContention;
  }
  return s;
}

void LaneCertService::bump(std::uint64_t ServiceStats::* counter) {
  std::lock_guard<std::mutex> lock(statsMu_);
  ++(stats_.*counter);
}

void LaneCertService::admitOrReject() {
  if (options_.maxQueueDepth == 0) return;
  const std::size_t backlog = sched_.pendingCount();
  if (backlog < options_.maxQueueDepth) return;
  bump(&ServiceStats::rejectedJobs);
  // Retry-after scales with how far past the limit the backlog is: a just-
  // saturated queue suggests an immediate retry, a deep one a longer pause.
  // A hint, not a reservation — the client may still be rejected again.
  const auto hint = std::chrono::milliseconds(
      1 + (backlog - options_.maxQueueDepth) * 2);
  throw RejectedError(hint);
}

void LaneCertService::publishPlan(
    const std::string& key,
    const std::shared_ptr<std::promise<std::shared_ptr<const ProvePlan>>>&
        promise,
    const std::shared_ptr<const ProvePlan>& plan) {
  {
    std::lock_guard<std::mutex> lock(planMu_);
    const auto [it, inserted] = plans_.try_emplace(key, plan);
    if (inserted) {
      planOrder_.push_back(key);
      // Capacity clamps to >= 1 so eviction can never remove the entry
      // just inserted.
      const std::size_t cap = std::max<std::size_t>(1, options_.maxCachedPlans);
      while (planOrder_.size() > cap) {
        plans_.erase(planOrder_.front());
        planOrder_.pop_front();
      }
    }
    planInFlight_.erase(key);
  }
  promise->set_value(plan);
}

CoreProveResult LaneCertService::runProve(const ProveJob& job) {
  const IntervalRepresentation* rep = job.rep ? &*job.rep : nullptr;
  if (job.graph.numVertices() <= 1) {
    // Degenerate graphs never reach the plan stage; the standalone prover
    // short-circuits them identically.
    return proveCore(job.graph, job.ids, *job.property, rep, 1);
  }
  ParallelExecutor exec(pool_);
  if (!options_.enablePlanCache) {
    if (auto snap = loadSnapshot(job.graph, rep)) {
      return proveCore(job.graph, job.ids, *job.property, *snap, exec);
    }
    bump(&ServiceStats::planBuilds);
    FaultInjector::fire(FaultSite::kPlanBuild);
    if (!snapshots_) {
      return proveCorePipelined(job.graph, job.ids, *job.property, rep, exec);
    }
    return proveCorePipelined(
        job.graph, job.ids, *job.property, rep, exec,
        [this, &job, rep](const std::shared_ptr<const ProvePlan>& built) {
          snapshots_->persistAsync(snapshot::planSnapshotKey(job.graph, rep),
                                   built);
        });
  }

  const std::string key = planKey(job.graph, rep);
  std::shared_ptr<const ProvePlan> plan;
  std::shared_future<std::shared_ptr<const ProvePlan>> inFlight;
  std::shared_ptr<std::promise<std::shared_ptr<const ProvePlan>>> promise;
  {
    std::lock_guard<std::mutex> lock(planMu_);
    const auto it = plans_.find(key);
    if (it != plans_.end()) {
      plan = it->second;
    } else {
      const auto fit = planInFlight_.find(key);
      if (fit != planInFlight_.end()) {
        inFlight = fit->second;
      } else {
        promise =
            std::make_shared<std::promise<std::shared_ptr<const ProvePlan>>>();
        planInFlight_.emplace(key, promise->get_future().share());
      }
    }
  }
  if (plan) {
    bump(&ServiceStats::planCacheHits);
    return proveCore(job.graph, job.ids, *job.property, *plan, exec);
  }
  if (inFlight.valid()) {
    // Coalesce onto the running head build.  The future resolves at HEAD
    // completion (the builder keeps running its waves), and the builder is
    // an admitted job that always makes progress even when every worker is
    // blocked here — its forShards degrade to caller-executed shards — so
    // this wait cannot deadlock.  A failed build rethrows the builder's
    // error into every coalesced job; retries start a fresh build.
    bump(&ServiceStats::planBuildsCoalesced);
    plan = inFlight.get();
    return proveCore(job.graph, job.ids, *job.property, *plan, exec);
  }
  // Builder role: answer from the snapshot store when a valid on-disk plan
  // exists (warm start: the whole head — including the interval
  // decomposition — is skipped), otherwise run the pipelined head;
  // coalesced waiters get the plan through the promise either way.
  if (auto snap = loadSnapshot(job.graph, rep)) {
    publishPlan(key, promise, snap);
    return proveCore(job.graph, job.ids, *job.property, *snap, exec);
  }
  bump(&ServiceStats::planBuilds);
  bool published = false;
  try {
    // Fired INSIDE the try: a fault here follows the failed-build path, so
    // coalesced waiters see the error and a retry starts a fresh build.
    FaultInjector::fire(FaultSite::kPlanBuild);
    return proveCorePipelined(
        job.graph, job.ids, *job.property, rep, exec,
        [this, &key, &promise, &published, &job,
         rep](const std::shared_ptr<const ProvePlan>& built) {
          publishPlan(key, promise, built);
          published = true;
          // Write-behind: encode + write happen on the store's own writer
          // thread, off the serving path.
          if (snapshots_) {
            snapshots_->persistAsync(
                snapshot::planSnapshotKey(job.graph, rep), built);
          }
        });
  } catch (...) {
    // Clean up ONLY when the head build itself failed.  After publishPlan
    // the promise is satisfied and the in-flight slot is gone — a same-key
    // entry found then would belong to a NEWER build (cache-evicted plan,
    // fresh miss) and must not be torn down by this job's wave error.
    if (!published) {
      {
        std::lock_guard<std::mutex> lock(planMu_);
        planInFlight_.erase(key);
      }
      promise->set_exception(std::current_exception());
    }
    throw;
  }
}

SimulationResult LaneCertService::runVerify(const VerifyJob& job) {
  if (!job.labels) {
    throw std::invalid_argument("VerifyJob: null label payload");
  }
  FaultInjector::fire(FaultSite::kDecode);
  ParallelExecutor exec(pool_);
  FaultInjector::fire(FaultSite::kSweep);
  return simulateEdgeScheme(job.graph, job.ids, *job.labels,
                            makeCoreVerifier(job.property, job.params), exec);
}

SimulationResult LaneCertService::runDistVerify(const DistVerifyJob& job) {
  FaultInjector::fire(FaultSite::kDecode);
  dist::DistOptions opts;
  opts.workers = job.workerProcesses;
  opts.threadsPerWorker = job.threadsPerWorker;
  opts.maxWorkerRestarts = job.maxWorkerRestarts;
  // One ATTEMPT = a whole coordinator lifetime: image build, K forks,
  // sweep, teardown.  Inside it, worker deaths are absorbed by re-fork +
  // journal replay up to maxWorkerRestarts; WorkerFailure means that
  // budget is gone, which maps onto the taxonomy as TransientError — a
  // fresh attempt re-forks everything from scratch and cannot double-apply
  // anything (the verdict plane is rebuilt whole).  Permanent errors
  // (unknown property, label mismatch) fail on the first attempt.
  const int attempts = std::max(1, job.options.maxAttempts);
  std::chrono::milliseconds backoff = job.options.retryBackoff;
  for (int attempt = 0;; ++attempt) {
    if (attempt > 0) {
      bump(&ServiceStats::transientRetries);
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
    try {
      FaultInjector::fire(FaultSite::kSweep);
      dist::DistVerifier verifier(job.graph, job.ids, *job.labels,
                                  job.property, job.params, opts);
      SimulationResult result = verifier.verifyAll();
      const dist::DistStats& ds = verifier.stats();
      std::lock_guard<std::mutex> lock(statsMu_);
      stats_.distWorkerDeaths += ds.workerDeaths;
      stats_.distWorkerRestarts += ds.workerRestarts;
      return result;
    } catch (const dist::WorkerFailure& e) {
      {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.distWorkerDeaths;  // the unabsorbed death that ended it
      }
      if (attempt + 1 >= attempts) throw TransientError(e.what());
    } catch (const TransientError&) {
      if (attempt + 1 >= attempts) throw;
    }
  }
}

template <typename T>
void LaneCertService::finishCacheEntry(ResultCache<T>& cache,
                                       const std::string& key, bool success) {
  if (key.empty()) return;
  std::lock_guard<std::mutex> lock(cache.mu);
  if (!success) {
    // Failed or cancelled: evict so a retry recomputes instead of replaying
    // the stored exception forever.
    cache.entries.erase(key);
    return;
  }
  cache.completed.push_back(key);
  if (cache.completed.size() > options_.maxCachedResults) {
    cache.entries.erase(cache.completed.front());
    cache.completed.pop_front();
  }
}

template <typename T, typename Job, typename Run>
std::shared_future<T> LaneCertService::submitImpl(
    ResultCache<T>& cache, std::string key, std::shared_ptr<const void> pin,
    Job job, Run run) {
  auto prom = std::make_shared<std::promise<T>>();
  std::shared_future<T> fut = prom->get_future().share();
  if (!key.empty()) {
    std::lock_guard<std::mutex> lock(cache.mu);
    const auto [it, inserted] = cache.entries.try_emplace(
        key, typename ResultCache<T>::Slot{fut, std::move(pin)});
    if (!inserted) {
      // Identical request already cached or in flight: share its result.
      bump(&ServiceStats::resultCacheHits);
      return it->second.future;
    }
  }
  const std::size_t cost = estimatedCost(*job);
  auto keyPtr = std::make_shared<std::string>(std::move(key));
  sched_.submit(
      cost,
      /*run=*/
      [this, &cache, keyPtr, job = std::move(job), prom, run] {
        bool success = false;
        try {
          // Dispatch-time deadline: an expired job fails without running
          // (the work itself is the unit of interruption, never split).
          if (job->options.expired()) {
            bump(&ServiceStats::deadlineExpiredJobs);
            throw DeadlineExceededError{};
          }
          prom->set_value(run(*job));
          success = true;
        } catch (...) {
          prom->set_exception(std::current_exception());
        }
        finishCacheEntry(cache, *keyPtr, success);
      },
      /*cancel=*/
      [this, &cache, keyPtr, prom] {
        prom->set_exception(std::make_exception_ptr(CancelledError{}));
        finishCacheEntry(cache, *keyPtr, /*success=*/false);
        bump(&ServiceStats::cancelledJobs);
      });
  return fut;
}

std::shared_future<CoreProveResult> LaneCertService::submitProve(ProveJob job) {
  admitOrReject();
  // Deadline-carrying jobs never share results: one caller's deadline must
  // not fail a future another caller coalesced onto.
  std::string key = options_.enableResultCache && !job.options.deadline
                        ? proveJobKey(job)
                        : std::string{};
  auto jobPtr = std::make_shared<const ProveJob>(std::move(job));
  return submitImpl<CoreProveResult>(
      proveCache_, std::move(key), /*pin=*/nullptr, std::move(jobPtr),
      [this](const ProveJob& j) {
        auto result = runProve(j);
        bump(&ServiceStats::proveJobsCompleted);
        return result;
      });
}

std::uint64_t LaneCertService::openVerifySession(VerifyJob job) {
  if (!job.labels) {
    throw std::invalid_argument("VerifyJob: null label payload");
  }
  FaultInjector::fire(FaultSite::kDecode);
  auto entry = std::make_shared<VerifySessionEntry>();
  entry->fullSweepCost = estimatedCost(job);
  // The session copies the payload into its own store (the VerifySession
  // constructor takes the vector by value), so session edits never touch
  // the caller's buffer — payload-identity keys of plain verify jobs stay
  // valid.
  entry->session = std::make_unique<VerifySession>(
      std::move(job.graph), std::move(job.ids), *job.labels,
      std::move(job.property), job.params);
  // Hand every session the service's detected topology (or the blind
  // single node when numaAware is off) so sessions never re-read sysfs and
  // all place replicas identically.
  entry->session->setTopology(topo_);
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(sessionsMu_);
    id = nextSessionId_++;
    sessions_.emplace(id, std::move(entry));
  }
  bump(&ServiceStats::sessionsOpened);
  return id;
}

std::shared_ptr<LaneCertService::VerifySessionEntry>
LaneCertService::findSession(std::uint64_t session) const {
  std::lock_guard<std::mutex> lock(sessionsMu_);
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    throw std::invalid_argument("serve: unknown or closed verify session");
  }
  return it->second;
}

std::uint64_t LaneCertService::sessionStoreVersion(
    std::uint64_t session) const {
  const std::shared_ptr<VerifySessionEntry> entry = findSession(session);
  std::lock_guard<std::mutex> lock(entry->mu);
  return entry->versionMirror;
}

SweepCacheStats LaneCertService::sessionCacheStats(
    std::uint64_t session) const {
  return findSession(session)->session->cacheStats();
}

std::size_t LaneCertService::sessionEpochSlots(std::uint64_t session) const {
  return findSession(session)->session->epochSlots();
}

void LaneCertService::closeVerifySession(std::uint64_t session) {
  std::lock_guard<std::mutex> lock(sessionsMu_);
  sessions_.erase(session);  // drivers hold shared_ptrs; state stays valid
}

std::shared_future<SimulationResult> LaneCertService::submitReverify(
    ReverifyJob job) {
  admitOrReject();
  const std::shared_ptr<VerifySessionEntry> entry = findSession(job.session);
  std::string key = options_.enableResultCache && !job.options.deadline
                        ? reverifyJobKey(job)
                        : std::string{};
  std::lock_guard<std::mutex> lock(entry->mu);
  // Until the session has COMPLETED a full sweep (not merely had one
  // queued — a cancelled or failed first batch leaves it unswept), any
  // batch runs the initial whole-graph sweep regardless of its edit list,
  // and must be costed like one; afterwards a batch costs its dirty set.
  const std::size_t cost =
      entry->sweptMirror ? estimatedCost(job) : entry->fullSweepCost;
  // Tail coalescing: a duplicate of the batch at the queue tail (front-end
  // retry) shares the pending computation instead of applying the edits
  // twice.  Earlier positions never coalesce — each batch advances session
  // state, so only "same edits at the same state" is the same request.
  if (!key.empty() && !entry->queue.empty() &&
      entry->queue.back().key == key) {
    bump(&ServiceStats::resultCacheHits);
    return entry->queue.back().future;
  }
  auto prom = std::make_shared<std::promise<SimulationResult>>();
  std::shared_future<SimulationResult> fut = prom->get_future().share();
  entry->queue.push_back(VerifySessionEntry::PendingBatch{
      std::move(job.edits), std::move(key), job.options, std::move(prom),
      fut});
  if (!entry->running) {
    // One driver per session at a time keeps batches FIFO whatever the
    // scheduler's cost order does to OTHER jobs, and makes the "small
    // reverify waits on large reverify of the same session" case a queue
    // wait instead of a scheduler-slot deadlock.
    entry->running = true;
    sched_.submit(
        cost, [this, entry] { runSessionDriver(entry); },
        [this, entry] { cancelSessionQueue(entry); });
  }
  return fut;
}

void LaneCertService::runSessionDriver(
    const std::shared_ptr<VerifySessionEntry>& entry) {
  while (true) {
    VerifySessionEntry::PendingBatch batch;
    {
      std::lock_guard<std::mutex> lock(entry->mu);
      if (entry->queue.empty()) {
        entry->running = false;
        return;
      }
      batch = std::move(entry->queue.front());
      entry->queue.pop_front();
    }
    bool success = false;
    std::exception_ptr error;
    SimulationResult result;
    // Bounded retry for TRANSIENT failures only.  Safe to re-run: an edit
    // batch is a list of absolute label rewrites, so re-applying it after a
    // partial attempt converges to the same store state, and the session's
    // dirty tracking re-checks the same rows.  Permanent errors (decode
    // failures, bad arguments) fail the batch on the first attempt.
    const int attempts = std::max(1, batch.options.maxAttempts);
    std::chrono::milliseconds backoff = batch.options.retryBackoff;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      if (batch.options.expired()) {
        bump(&ServiceStats::deadlineExpiredJobs);
        error = std::make_exception_ptr(DeadlineExceededError{});
        break;
      }
      if (attempt > 0) {
        bump(&ServiceStats::transientRetries);
        std::this_thread::sleep_for(backoff);
        backoff *= 2;
      }
      try {
        FaultInjector::fire(FaultSite::kSweep);
        ParallelExecutor exec(pool_);
        result = entry->session->reverifyEdits(batch.edits, exec);
        success = true;
        break;
      } catch (const TransientError&) {
        error = std::current_exception();  // retried until attempts run out
      } catch (...) {
        error = std::current_exception();
        break;
      }
    }
    {
      // Mirror BEFORE resolving the promise, so a client that just
      // observed its future sees the matching version.
      std::lock_guard<std::mutex> lock(entry->mu);
      entry->versionMirror = entry->session->storeVersion();
      entry->sweptMirror = entry->session->swept();
    }
    if (success) {
      batch.promise->set_value(std::move(result));
      bump(&ServiceStats::reverifyBatchesCompleted);
    } else {
      batch.promise->set_exception(error);
    }
  }
}

void LaneCertService::cancelSessionQueue(
    const std::shared_ptr<VerifySessionEntry>& entry) {
  std::deque<VerifySessionEntry::PendingBatch> dropped;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    dropped.swap(entry->queue);
    entry->running = false;
  }
  // Outside the lock, mirroring cancelPending(): promise observers may call
  // back into the service.
  for (VerifySessionEntry::PendingBatch& b : dropped) {
    b.promise->set_exception(std::make_exception_ptr(CancelledError{}));
    bump(&ServiceStats::cancelledJobs);
  }
}

std::shared_future<SimulationResult> LaneCertService::submitVerify(
    VerifyJob job) {
  admitOrReject();
  std::string key = options_.enableResultCache && !job.options.deadline
                        ? verifyJobKey(job)
                        : std::string{};
  auto jobPtr = std::make_shared<const VerifyJob>(std::move(job));
  // The label payload is identity-keyed, so the cache entry must keep it
  // alive for as long as the key exists.
  std::shared_ptr<const void> pin = jobPtr->labels;
  return submitImpl<SimulationResult>(
      verifyCache_, std::move(key), std::move(pin), std::move(jobPtr),
      [this](const VerifyJob& j) {
        auto result = runVerify(j);
        bump(&ServiceStats::verifyJobsCompleted);
        return result;
      });
}

std::shared_future<SimulationResult> LaneCertService::submitDistVerify(
    DistVerifyJob job) {
  admitOrReject();
  if (!job.labels) {
    throw std::invalid_argument("DistVerifyJob: null label payload");
  }
  // distVerifyJobKey resolves the property and throws invalid_argument for
  // an unknown name — submit-time, synchronously, like a null payload:
  // retrying an unresolvable name can never succeed, so it must not burn a
  // scheduler slot.  Built unconditionally for exactly that validation;
  // only kept as a cache key when caching applies.
  std::string key = distVerifyJobKey(job);
  if (!options_.enableResultCache || job.options.deadline) key.clear();
  auto jobPtr = std::make_shared<const DistVerifyJob>(std::move(job));
  // Same identity-keyed payload pinning as submitVerify — and the same
  // cache: equal keys coalesce dist and in-process verify requests.
  std::shared_ptr<const void> pin = jobPtr->labels;
  return submitImpl<SimulationResult>(
      verifyCache_, std::move(key), std::move(pin), std::move(jobPtr),
      [this](const DistVerifyJob& j) {
        auto result = runDistVerify(j);
        bump(&ServiceStats::distVerifyJobsCompleted);
        return result;
      });
}

}  // namespace lanecert::serve
