#include "serve/batch_scheduler.hpp"

#include <algorithm>
#include <vector>

namespace lanecert::serve {

BatchScheduler::BatchScheduler(WorkerPool& pool, int maxConcurrent)
    : pool_(pool),
      maxConcurrent_(maxConcurrent > 0 ? maxConcurrent
                                       : std::max(1, pool.workerCount())) {}

BatchScheduler::~BatchScheduler() { drain(); }

void BatchScheduler::submit(std::size_t cost, std::function<void()> run,
                            std::function<void()> cancel) {
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{cost, nextSeq_};
  bySeq_.emplace(nextSeq_, key);
  ++nextSeq_;
  pending_.emplace(key, Entry{std::move(run), std::move(cancel)});
  dispatchLocked();
}

void BatchScheduler::dispatchLocked() {
  while (inFlight_ < maxConcurrent_ && !pending_.empty()) {
    auto chosen = pending_.begin();  // smallest cost, FIFO among equals
    const auto oldest = pending_.find(bySeq_.begin()->second);
    if (oldest->second.bypassed >= kMaxBypass) {
      chosen = oldest;  // aged out: starvation bound beats cost order
    } else if (chosen != oldest) {
      ++oldest->second.bypassed;
    }
    bySeq_.erase(chosen->first.second);
    auto node = pending_.extract(chosen);
    ++inFlight_;
    // Normal (back-of-queue) priority: shard tasks of already-running jobs
    // jump ahead via postUrgent, new drivers wait their turn.
    pool_.post([this, run = std::move(node.mapped().run)] {
      run();
      onJobFinished();
    });
  }
}

void BatchScheduler::onJobFinished() {
  std::lock_guard<std::mutex> lock(mu_);
  --inFlight_;
  dispatchLocked();
  if (inFlight_ == 0 && pending_.empty()) idle_.notify_all();
}

void BatchScheduler::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] { return inFlight_ == 0 && pending_.empty(); });
}

std::size_t BatchScheduler::pendingCount() {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

std::size_t BatchScheduler::cancelPending() {
  std::vector<Entry> cancelled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled.reserve(pending_.size());
    for (auto& [key, entry] : pending_) cancelled.push_back(std::move(entry));
    pending_.clear();
    bySeq_.clear();
    if (inFlight_ == 0) idle_.notify_all();
  }
  // Outside the lock: cancel callbacks touch service state (promises,
  // caches) that may itself call back into stats readers.
  for (Entry& e : cancelled) {
    if (e.cancel) e.cancel();
  }
  return cancelled.size();
}

}  // namespace lanecert::serve
