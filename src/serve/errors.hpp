#pragma once
// Error taxonomy of the serving layer.
//
// Every failure a client can observe through a job future (or a submit
// call) is one of these types, so callers can branch on WHAT failed rather
// than parsing message strings:
//
//   ServeError              — base of the taxonomy (never thrown itself)
//   ├─ CancelledError       — the job was discarded by cancelPending() (or a
//   │                         discarded session driver failed its queued
//   │                         batches) before it started
//   ├─ DeadlineExceededError— the job's JobOptions::deadline passed before
//   │                         the job was dispatched; the work never ran
//   ├─ RejectedError        — admission control: the scheduler queue was at
//   │                         ServiceOptions::maxQueueDepth when submit was
//   │                         called.  Thrown SYNCHRONOUSLY from submit*,
//   │                         never through a future; carries a retry-after
//   │                         hint scaled by the current backlog
//   └─ TransientError       — a retryable failure (resource blip, injected
//                             fault).  Session drivers retry these up to
//                             JobOptions::maxAttempts with doubling backoff
//                             before letting them reach the future.
//
// Anything else propagating through a future (std::invalid_argument,
// DecodeError, prover errors, ...) is a permanent job failure: retrying the
// identical request would fail identically, so the service never retries it.

#include <chrono>
#include <stdexcept>
#include <string>

namespace lanecert::serve {

/// Base of every serving-layer failure type.
class ServeError : public std::runtime_error {
 public:
  explicit ServeError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised through the futures of jobs discarded by cancelPending().
class CancelledError : public ServeError {
 public:
  CancelledError() : ServeError("serve: job cancelled before start") {}
};

/// Raised through a job's future when its deadline passed before dispatch.
/// The job's work never ran: a deadline is checked when the scheduler hands
/// the job to a worker (the sweep/prove is the unit of work and is never
/// interrupted mid-flight).
class DeadlineExceededError : public ServeError {
 public:
  DeadlineExceededError()
      : ServeError("serve: job deadline expired before dispatch") {}
};

/// Thrown synchronously by submit* when admission control turns the request
/// away (scheduler backlog at ServiceOptions::maxQueueDepth).  Nothing was
/// queued; resubmitting after `retryAfter` is the expected reaction.
class RejectedError : public ServeError {
 public:
  explicit RejectedError(std::chrono::milliseconds retryAfter)
      : ServeError("serve: queue saturated, retry after " +
                   std::to_string(retryAfter.count()) + "ms"),
        retryAfter_(retryAfter) {}

  /// Backpressure hint: grows with the backlog that caused the rejection.
  [[nodiscard]] std::chrono::milliseconds retryAfter() const {
    return retryAfter_;
  }

 private:
  std::chrono::milliseconds retryAfter_;
};

/// A retryable failure.  Throw (or inject) this to mark an error as safe to
/// retry: re-running the job cannot double-apply anything (reverify edit
/// batches are absolute label rewrites, prove/verify jobs are pure).
class TransientError : public ServeError {
 public:
  TransientError() : ServeError("serve: transient failure") {}
  explicit TransientError(const std::string& what) : ServeError(what) {}
};

}  // namespace lanecert::serve
