#pragma once
// FaultInjector — a process-wide seam for forcing failures inside the
// serving pipeline.
//
// The service fires a site marker at each stage boundary (label decode,
// prover plan build, verification sweep, session batch).  Tests arm a hook
// that may throw (TransientError for retryable blips, anything else for
// permanent poison) or sleep (latency injection); production never arms
// anything, so the cost on the hot path is one relaxed atomic load.
//
// The hook runs on whatever pool thread hit the site, so it must be
// thread-safe.  The hook is copied under a mutex and invoked outside it (a
// sleeping hook must not serialize other sites), so a fire() already past
// the armed check may still complete with the previous hook after disarm()
// returns — tests drain the service before disarming.
//
// Scope: this is a test seam, deliberately global (the sites live deep in
// the service where threading a per-instance injector through every layer
// would contaminate the API).  Tests arm it, run, disarm — see
// tests/test_fault.cpp; FaultScope below makes that exception-safe.

#include <atomic>
#include <functional>

namespace lanecert::serve {

/// Stage boundaries at which faults can be injected.
enum class FaultSite {
  kDecode,     ///< label payload about to be decoded (openVerifySession,
               ///< runVerify)
  kPlanBuild,  ///< prover head build about to run (runProve, miss path)
  kSweep,      ///< verification sweep about to run (runVerify, session
               ///< driver batch)
  kSnapshotLoad,  ///< plan snapshot about to be loaded (runProve, miss
                  ///< path; a fault here degrades to a fresh build)
};

[[nodiscard]] const char* faultSiteName(FaultSite site);

class FaultInjector {
 public:
  using Hook = std::function<void(FaultSite)>;

  /// Installs `hook`; every subsequent fire() calls it.  Replaces any
  /// previous hook.
  static void arm(Hook hook);
  /// Removes the hook.  After return no NEW fire() observes it.
  static void disarm();
  /// Called by the service at each site.  No-op unless armed; exceptions
  /// thrown by the hook propagate to the calling stage.
  static void fire(FaultSite site);
  [[nodiscard]] static bool armed();
};

/// RAII arm/disarm for tests.
class FaultScope {
 public:
  explicit FaultScope(FaultInjector::Hook hook) {
    FaultInjector::arm(std::move(hook));
  }
  ~FaultScope() { FaultInjector::disarm(); }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;
};

}  // namespace lanecert::serve
