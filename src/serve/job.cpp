#include "serve/job.hpp"

#include <stdexcept>

#include "mso/properties.hpp"
#include "pls/codec.hpp"

namespace lanecert::serve {

namespace {

void encodeGraph(Encoder& enc, const Graph& g) {
  enc.u64(static_cast<std::uint64_t>(g.numVertices()));
  enc.u64(static_cast<std::uint64_t>(g.numEdges()));
  for (const Edge& e : g.edges()) {
    enc.u64(static_cast<std::uint64_t>(e.u));
    enc.u64(static_cast<std::uint64_t>(e.v));
  }
}

void encodeIds(Encoder& enc, const IdAssignment& ids) {
  enc.u64(static_cast<std::uint64_t>(ids.numVertices()));
  for (VertexId v = 0; v < ids.numVertices(); ++v) enc.u64(ids.id(v));
}

void encodeRep(Encoder& enc, const IntervalRepresentation* rep) {
  if (rep == nullptr) {
    enc.boolean(false);
    return;
  }
  enc.boolean(true);
  const auto& ivs = rep->intervals();
  enc.u64(ivs.size());
  for (const Interval& iv : ivs) {
    enc.i64(iv.l);
    enc.i64(iv.r);
  }
}

}  // namespace

std::size_t estimatedCost(const ProveJob& job) {
  // Certificates and chains grow with the completion size; edges dominate.
  return static_cast<std::size_t>(job.graph.numVertices()) +
         4 * static_cast<std::size_t>(job.graph.numEdges());
}

std::size_t estimatedCost(const VerifyJob& job) {
  std::size_t bytes = 0;
  if (job.labels) {
    for (const std::string& l : *job.labels) bytes += l.size();
  }
  return static_cast<std::size_t>(job.graph.numVertices()) + bytes / 16;
}

std::size_t estimatedCost(const DistVerifyJob& job) {
  std::size_t bytes = 0;
  if (job.labels) {
    for (const std::string& l : *job.labels) bytes += l.size();
  }
  return static_cast<std::size_t>(job.graph.numVertices()) + bytes / 16;
}

std::size_t estimatedCost(const ReverifyJob& job) {
  // Two dirty endpoints per edited edge, plus decode volume on the same
  // bytes/16 scale as full verification — only the ORDER matters, and this
  // ranks a 1%-dirty batch far below the full sweep it replaces.
  std::size_t bytes = 0;
  for (const EdgeLabelEdit& e : job.edits) bytes += e.bytes.size();
  return 2 * job.edits.size() + bytes / 16;
}

std::string planKey(const Graph& g, const IntervalRepresentation* rep) {
  Encoder enc;
  enc.bytes("plan");
  encodeGraph(enc, g);
  encodeRep(enc, rep);
  return enc.take();
}

std::string proveJobKey(const ProveJob& job) {
  Encoder enc;
  enc.bytes("prove");
  encodeGraph(enc, job.graph);
  encodeIds(enc, job.ids);
  enc.bytes(job.property->name());
  encodeRep(enc, job.rep ? &*job.rep : nullptr);
  return enc.take();
}

namespace {

/// Shared layout of verifyJobKey / distVerifyJobKey: emitting one byte
/// sequence for both request kinds is what lets them coalesce — the dist
/// layer's byte-identity contract makes sharing the cached result sound.
std::string verifyContentKey(const Graph& g, const IdAssignment& ids,
                             const std::string& propertyName,
                             const CoreVerifierParams& params,
                             const std::vector<std::string>* labels,
                             std::uint64_t labelsVersion) {
  Encoder enc;
  enc.bytes("verify");
  encodeGraph(enc, g);
  encodeIds(enc, ids);
  enc.bytes(propertyName);
  enc.u64(static_cast<std::uint64_t>(params.maxLanes));
  enc.u64(static_cast<std::uint64_t>(params.maxThrough));
  // Payload identity, not payload bytes (see header).  The service pins the
  // payload of every cached entry, so a live key never aliases a freed and
  // reallocated buffer.
  enc.u64(reinterpret_cast<std::uintptr_t>(labels));
  enc.u64(labels ? labels->size() : 0);
  // Content version: identity pins the BUFFER, the version pins the BYTES
  // in it.  A store-backed payload edited in place resubmits with a bumped
  // version and misses the stale entry instead of replaying its verdict.
  enc.u64(labelsVersion);
  return enc.take();
}

}  // namespace

std::string verifyJobKey(const VerifyJob& job) {
  return verifyContentKey(job.graph, job.ids, job.property->name(),
                          job.params, job.labels.get(), job.labelsVersion);
}

std::string distVerifyJobKey(const DistVerifyJob& job) {
  const PropertyPtr prop = propertyByName(job.property);
  if (!prop) {
    throw std::invalid_argument("DistVerifyJob: unknown property '" +
                                job.property + "'");
  }
  // workerProcesses / threadsPerWorker / maxWorkerRestarts are excluded on
  // purpose: the dist contract makes the result independent of all three.
  return verifyContentKey(job.graph, job.ids, prop->name(), job.params,
                          job.labels.get(), job.labelsVersion);
}

std::string reverifyJobKey(const ReverifyJob& job) {
  Encoder enc;
  enc.bytes("reverify");
  enc.u64(job.session);
  enc.u64(job.edits.size());
  for (const EdgeLabelEdit& e : job.edits) {
    enc.i64(e.edge);
    enc.bytes(e.bytes);
  }
  return enc.take();
}

}  // namespace lanecert::serve
