#include "serve/job.hpp"

#include "pls/codec.hpp"

namespace lanecert::serve {

namespace {

void encodeGraph(Encoder& enc, const Graph& g) {
  enc.u64(static_cast<std::uint64_t>(g.numVertices()));
  enc.u64(static_cast<std::uint64_t>(g.numEdges()));
  for (const Edge& e : g.edges()) {
    enc.u64(static_cast<std::uint64_t>(e.u));
    enc.u64(static_cast<std::uint64_t>(e.v));
  }
}

void encodeIds(Encoder& enc, const IdAssignment& ids) {
  enc.u64(static_cast<std::uint64_t>(ids.numVertices()));
  for (VertexId v = 0; v < ids.numVertices(); ++v) enc.u64(ids.id(v));
}

void encodeRep(Encoder& enc, const IntervalRepresentation* rep) {
  if (rep == nullptr) {
    enc.boolean(false);
    return;
  }
  enc.boolean(true);
  const auto& ivs = rep->intervals();
  enc.u64(ivs.size());
  for (const Interval& iv : ivs) {
    enc.i64(iv.l);
    enc.i64(iv.r);
  }
}

}  // namespace

std::size_t estimatedCost(const ProveJob& job) {
  // Certificates and chains grow with the completion size; edges dominate.
  return static_cast<std::size_t>(job.graph.numVertices()) +
         4 * static_cast<std::size_t>(job.graph.numEdges());
}

std::size_t estimatedCost(const VerifyJob& job) {
  std::size_t bytes = 0;
  if (job.labels) {
    for (const std::string& l : *job.labels) bytes += l.size();
  }
  return static_cast<std::size_t>(job.graph.numVertices()) + bytes / 16;
}

std::size_t estimatedCost(const ReverifyJob& job) {
  // Two dirty endpoints per edited edge, plus decode volume on the same
  // bytes/16 scale as full verification — only the ORDER matters, and this
  // ranks a 1%-dirty batch far below the full sweep it replaces.
  std::size_t bytes = 0;
  for (const EdgeLabelEdit& e : job.edits) bytes += e.bytes.size();
  return 2 * job.edits.size() + bytes / 16;
}

std::string planKey(const Graph& g, const IntervalRepresentation* rep) {
  Encoder enc;
  enc.bytes("plan");
  encodeGraph(enc, g);
  encodeRep(enc, rep);
  return enc.take();
}

std::string proveJobKey(const ProveJob& job) {
  Encoder enc;
  enc.bytes("prove");
  encodeGraph(enc, job.graph);
  encodeIds(enc, job.ids);
  enc.bytes(job.property->name());
  encodeRep(enc, job.rep ? &*job.rep : nullptr);
  return enc.take();
}

std::string verifyJobKey(const VerifyJob& job) {
  Encoder enc;
  enc.bytes("verify");
  encodeGraph(enc, job.graph);
  encodeIds(enc, job.ids);
  enc.bytes(job.property->name());
  enc.u64(static_cast<std::uint64_t>(job.params.maxLanes));
  enc.u64(static_cast<std::uint64_t>(job.params.maxThrough));
  // Payload identity, not payload bytes (see header).  The service pins the
  // payload of every cached entry, so a live key never aliases a freed and
  // reallocated buffer.
  enc.u64(reinterpret_cast<std::uintptr_t>(job.labels.get()));
  enc.u64(job.labels ? job.labels->size() : 0);
  // Content version: identity pins the BUFFER, the version pins the BYTES
  // in it.  A store-backed payload edited in place resubmits with a bumped
  // version and misses the stale entry instead of replaying its verdict.
  enc.u64(job.labelsVersion);
  return enc.take();
}

std::string reverifyJobKey(const ReverifyJob& job) {
  Encoder enc;
  enc.bytes("reverify");
  enc.u64(job.session);
  enc.u64(job.edits.size());
  for (const EdgeLabelEdit& e : job.edits) {
    enc.i64(e.edge);
    enc.bytes(e.bytes);
  }
  return enc.take();
}

}  // namespace lanecert::serve
