#include "net/wire_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "serve/job.hpp"

namespace lanecert::net {

namespace {

using namespace std::chrono_literals;

void setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void setNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// The requestId prefix of a frame we could not fully decode — enough to
/// answer kError instead of killing the connection (the FRAME boundary is
/// intact, so the stream stays in sync even when the body is garbage).
std::optional<std::uint64_t> tryRequestId(std::string_view frame) {
  try {
    Decoder dec{frame};
    return dec.u64();
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

/// Wake fd for the signal handler (one server per process installs it).
std::atomic<int> g_signalWakeFd{-1};

void signalDrainHandler(int) {
  const int fd = g_signalWakeFd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char c = 'D';
    [[maybe_unused]] const auto n = ::write(fd, &c, 1);
  }
}

}  // namespace

WireServer::WireServer(WireServerOptions options)
    : options_(std::move(options)), service_(options_.service) {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listenFd_ < 0) throw std::runtime_error("WireServer: socket() failed");
  int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bindAddress.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listenFd_);
    throw std::runtime_error("WireServer: bad bind address " +
                             options_.bindAddress);
  }
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listenFd_);
    throw std::runtime_error(std::string("WireServer: bind failed: ") +
                             std::strerror(errno));
  }
  if (::listen(listenFd_, 128) < 0) {
    ::close(listenFd_);
    throw std::runtime_error("WireServer: listen failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  setNonBlocking(listenFd_);

  int pipeFds[2];
  if (::pipe(pipeFds) != 0) {
    ::close(listenFd_);
    throw std::runtime_error("WireServer: pipe failed");
  }
  wakeRead_ = pipeFds[0];
  wakeWrite_ = pipeFds[1];
  setNonBlocking(wakeRead_);
  setNonBlocking(wakeWrite_);
}

WireServer::~WireServer() {
  stop();
  // run() may have been used without start(); make sure the loop is gone
  // before the fds go away.
  if (listenFd_ >= 0) ::close(listenFd_);
  if (wakeRead_ >= 0) ::close(wakeRead_);
  if (wakeWrite_ >= 0) ::close(wakeWrite_);
  // service_ drains on destruction.
}

void WireServer::installSignalDrain() {
  g_signalWakeFd.store(wakeWrite_, std::memory_order_relaxed);
  struct sigaction sa{};
  sa.sa_handler = signalDrainHandler;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
}

void WireServer::run() {
  loopRunning_.store(true, std::memory_order_release);
  loop();
  loopRunning_.store(false, std::memory_order_release);
}

void WireServer::start() {
  loopThread_ = std::thread([this] { run(); });
}

void WireServer::requestDrain() {
  const char c = 'D';
  [[maybe_unused]] const auto n = ::write(wakeWrite_, &c, 1);
}

void WireServer::stop() {
  if (loopThread_.joinable()) {
    const char c = 'S';
    [[maybe_unused]] const auto n = ::write(wakeWrite_, &c, 1);
    loopThread_.join();
  }
}

WireServerStats WireServer::stats() const {
  std::lock_guard<std::mutex> lock(statsMu_);
  return stats_;
}

void WireServer::beginDrain() {
  if (drainStarted_) return;
  drainStarted_ = true;
  draining_.store(true, std::memory_order_relaxed);
  drainDeadline_ = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(options_.drainGraceMs);
  {
    std::lock_guard<std::mutex> lock(statsMu_);
    ++stats_.drains;
  }
  // Stop accepting; surface the service's cancelPending — every discarded
  // job's future fails with CancelledError, which pollCompletions turns
  // into kCancelled frames, so every read request still gets a terminal
  // response.  Running jobs finish normally and respond normally.
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
  service_.cancelPending();
}

void WireServer::loop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Conn>> polled;
  while (true) {
    fds.clear();
    polled.clear();
    fds.push_back(pollfd{wakeRead_, POLLIN, 0});
    const bool hadListener = !drainStarted_ && listenFd_ >= 0;
    if (hadListener) {
      fds.push_back(pollfd{listenFd_, POLLIN, 0});
    }
    for (auto& [fd, conn] : conns_) {
      short events = POLLIN;
      if (!conn->out.empty()) events |= POLLOUT;
      fds.push_back(pollfd{fd, events, 0});
      polled.push_back(conn);
    }

    int timeoutMs = -1;
    if (!pending_.empty()) {
      timeoutMs = 1;  // completion scan cadence; futures have no callback
    } else if (drainStarted_) {
      timeoutMs = 20;
    }
    const int rc = ::poll(fds.data(), fds.size(), timeoutMs);
    if (rc < 0 && errno != EINTR) break;

    // Wake pipe: drain it; 'D' begins the graceful drain, 'S' is the
    // hard stop (close everything now).
    if (fds[0].revents & POLLIN) {
      char buf[64];
      ssize_t n;
      bool drain = false, hardStop = false;
      while ((n = ::read(wakeRead_, buf, sizeof(buf))) > 0) {
        for (ssize_t i = 0; i < n; ++i) {
          drain = drain || buf[i] == 'D';
          hardStop = hardStop || buf[i] == 'S';
        }
      }
      if (hardStop) {
        shutdownNow();
        return;
      }
      if (drain) beginDrain();
    }

    // Index with the SAME flag the fds were built under: the wake handler
    // above may have run beginDrain() (drainStarted_ flips, listenFd_
    // closes), but the listener pollfd is still at index 1 this tick — a
    // re-evaluated condition would shift every connection onto its
    // neighbor's revents and close the wrong one on a POLLHUP.
    std::size_t idx = 1;
    if (hadListener) {
      if (!drainStarted_ && (fds[idx].revents & POLLIN)) acceptReady();
      ++idx;
    }
    for (std::size_t c = 0; c < polled.size(); ++c, ++idx) {
      const auto& conn = polled[c];
      if (conn->fd < 0) continue;  // closed earlier this tick
      const short rev = idx < fds.size() ? fds[idx].revents : 0;
      if (rev & (POLLERR | POLLHUP | POLLNVAL)) {
        closeConn(conn);
        continue;
      }
      if (rev & POLLIN) readReady(conn);
      if (conn->fd >= 0 && (rev & POLLOUT)) flushWrites(conn);
    }

    pollCompletions();

    // Slow-consumer cap: a client that keeps requesting but never reads
    // accumulates output; past the cap it is cut off rather than buffered
    // without bound.
    {
      std::vector<std::shared_ptr<Conn>> over;
      for (const auto& [fd, conn] : conns_) {
        if (conn->queuedBytes > options_.maxQueuedBytesPerConn) {
          over.push_back(conn);
        }
      }
      for (const auto& conn : over) closeConn(conn);
    }

    if (drainStarted_) {
      bool flushed = pending_.empty();
      for (const auto& [fd, conn] : conns_) {
        flushed = flushed && conn->out.empty();
      }
      if (flushed && !lingering_) {
        // Every terminal frame is in the kernel's hands.  Do NOT close
        // yet — close() with unread bytes in OUR receive buffer turns
        // into an RST, and an RST discards the PEER's unread receive
        // buffer: the replies just flushed.  Send FIN and keep reading
        // until each peer closes.
        lingering_ = true;
        for (const auto& [fd, conn] : conns_) ::shutdown(fd, SHUT_WR);
      }
      const bool graceOver =
          std::chrono::steady_clock::now() >= drainDeadline_;
      if ((lingering_ && conns_.empty()) || graceOver) {
        shutdownNow();
        return;
      }
    }
  }
}

void WireServer::shutdownNow() {
  std::vector<std::shared_ptr<Conn>> toClose;
  toClose.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) toClose.push_back(conn);
  for (const auto& conn : toClose) closeConn(conn);
  pending_.clear();
  if (listenFd_ >= 0) {
    ::close(listenFd_);
    listenFd_ = -1;
  }
}

void WireServer::acceptReady() {
  while (true) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN/EINTR: done for this tick
    if (conns_.size() >=
        static_cast<std::size_t>(std::max(1, options_.maxConnections))) {
      ::close(fd);
      continue;
    }
    setNonBlocking(fd);
    setNoDelay(fd);
    auto conn = std::make_shared<Conn>(options_.maxFrameBytes);
    conn->fd = fd;
    conns_.emplace(fd, std::move(conn));
    std::lock_guard<std::mutex> lock(statsMu_);
    ++stats_.connectionsAccepted;
  }
}

void WireServer::readReady(const std::shared_ptr<Conn>& conn) {
  char buf[64 * 1024];
  if (lingering_) {
    // Write side is already FIN'd — nothing can be answered.  Read and
    // discard until the peer's own close shows up as EOF.
    while (conn->fd >= 0) {
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n > 0) continue;
      if (n < 0 &&
          (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
        return;
      }
      closeConn(conn);
      return;
    }
    return;
  }
  std::vector<std::string> frames;
  while (conn->fd >= 0) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {  // peer closed
      closeConn(conn);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      closeConn(conn);
      return;
    }
    frames.clear();
    if (!conn->parser.feed(std::string_view(buf, static_cast<std::size_t>(n)),
                           frames)) {
      // Framing violation (oversized/zero/malformed length): the stream
      // can never resync — fail the connection.  The quota case rejected
      // BEFORE any payload reserve.
      {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.protocolErrors;
      }
      closeConn(conn);
      return;
    }
    for (std::string& frame : frames) {
      {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.framesRead;
      }
      handleFrame(conn, frame);
      if (conn->fd < 0) return;
    }
  }
}

void WireServer::handleFrame(const std::shared_ptr<Conn>& conn,
                             std::string_view frame) {
  WireRequest req;
  try {
    req = decodeRequest(frame, options_.maxVertices);
  } catch (const std::exception& e) {
    // A body that does not parse is a per-request failure when the
    // requestId prefix is readable (the frame boundary holds, the stream
    // stays usable); otherwise the envelope itself is broken.
    if (const auto id = tryRequestId(frame)) {
      {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.requestErrors;
      }
      queueFrame(*conn, encodeErrorResponse(*id, e.what()));
    } else {
      {
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.protocolErrors;
      }
      closeConn(conn);
    }
    return;
  }
  dispatch(conn, std::move(req));
}

void WireServer::dispatch(const std::shared_ptr<Conn>& conn,
                          WireRequest&& req) {
  const std::uint64_t id = req.requestId;
  if (drainStarted_) {
    {
      std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.shuttingDownRejected;
    }
    queueFrame(*conn, encodeResponseHead(id, Status::kShuttingDown));
    return;
  }

  // Per-connection in-flight quota: applies to the async ops (the ones
  // that hold service capacity).  The retry-after hint scales with how
  // far over quota the pipeline already is.
  const bool asyncOp = req.op == Op::kProve || req.op == Op::kVerify ||
                       req.op == Op::kReverify;
  if (asyncOp && options_.maxInflightPerConn > 0 &&
      conn->inflight >= options_.maxInflightPerConn) {
    {
      std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.quotaRejected;
    }
    queueFrame(*conn,
               encodeRejected(id, 1 + static_cast<std::uint64_t>(
                                          conn->inflight)));
    return;
  }

  try {
    switch (req.op) {
      case Op::kPing:
        queueFrame(*conn, encodeResponseHead(id, Status::kOk));
        {
          std::lock_guard<std::mutex> lock(statsMu_);
          ++stats_.requestsCompleted;
        }
        return;
      case Op::kProve: {
        const PropertyPtr prop = propertyByName(req.property);
        if (!prop) throw WireError("unknown property '" + req.property + "'");
        serve::ProveJob job{req.graph,
                            IdAssignment::identity(req.graph.numVertices()),
                            prop,
                            {},
                            {}};
        PendingJob pend;
        pend.conn = conn;
        pend.requestId = id;
        pend.op = Op::kProve;
        pend.streamKey = serve::proveJobKey(job);
        pend.prove = service_.submitProve(std::move(job));
        pending_.push_back(std::move(pend));
        ++conn->inflight;
        return;
      }
      case Op::kVerify:
      case Op::kOpenSession: {
        const PropertyPtr prop = propertyByName(req.property);
        if (!prop) throw WireError("unknown property '" + req.property + "'");
        serve::VerifyJob job{
            req.graph,
            IdAssignment::identity(req.graph.numVertices()),
            std::make_shared<const std::vector<std::string>>(
                std::move(req.labels)),
            prop,
            {},
            0,
            {}};
        if (req.op == Op::kOpenSession) {
          const std::uint64_t session =
              service_.openVerifySession(std::move(job));
          conn->sessions.push_back(session);
          queueFrame(*conn, encodeSessionResponse(id, session));
          std::lock_guard<std::mutex> lock(statsMu_);
          ++stats_.requestsCompleted;
          return;
        }
        PendingJob pend;
        pend.conn = conn;
        pend.requestId = id;
        pend.op = Op::kVerify;
        pend.verify = service_.submitVerify(std::move(job));
        pending_.push_back(std::move(pend));
        ++conn->inflight;
        return;
      }
      case Op::kReverify: {
        PendingJob pend;
        pend.conn = conn;
        pend.requestId = id;
        pend.op = Op::kReverify;
        pend.verify = service_.submitReverify(
            serve::ReverifyJob{req.session, std::move(req.edits), {}});
        pending_.push_back(std::move(pend));
        ++conn->inflight;
        return;
      }
      case Op::kCloseSession: {
        service_.closeVerifySession(req.session);
        auto& sessions = conn->sessions;
        for (auto it = sessions.begin(); it != sessions.end(); ++it) {
          if (*it == req.session) {
            sessions.erase(it);
            break;
          }
        }
        queueFrame(*conn, encodeResponseHead(id, Status::kOk));
        std::lock_guard<std::mutex> lock(statsMu_);
        ++stats_.requestsCompleted;
        return;
      }
    }
  } catch (const serve::RejectedError& e) {
    // Service backpressure: surfaced as the wire-level retry-after code.
    {
      std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.serviceRejected;
    }
    queueFrame(*conn,
               encodeRejected(id, static_cast<std::uint64_t>(
                                      e.retryAfter().count())));
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.requestErrors;
    }
    queueFrame(*conn, encodeErrorResponse(id, e.what()));
  }
}

void WireServer::pollCompletions() {
  for (std::size_t i = 0; i < pending_.size();) {
    PendingJob& job = pending_[i];
    const bool ready =
        job.op == Op::kProve
            ? job.prove.wait_for(0s) == std::future_status::ready
            : job.verify.wait_for(0s) == std::future_status::ready;
    if (!ready) {
      ++i;
      continue;
    }
    const std::shared_ptr<Conn> conn = job.conn.lock();
    if (conn && conn->fd >= 0) {
      --conn->inflight;
      if (job.op == Op::kProve) {
        completeProve(conn, job);
      } else {
        completeVerify(conn, job);
      }
    }
    pending_[i] = std::move(pending_.back());
    pending_.pop_back();
  }
}

void WireServer::completeProve(const std::shared_ptr<Conn>& conn,
                               PendingJob& job) {
  try {
    const CoreProveResult& result = job.prove.get();
    const auto cert = encodedStreamFor(job.streamKey, result);
    queueCertificateStream(*conn, job.requestId, cert);
    std::lock_guard<std::mutex> lock(statsMu_);
    ++stats_.requestsCompleted;
    ++stats_.streamsSent;
  } catch (const serve::CancelledError&) {
    {
      std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.cancelledResponses;
    }
    queueFrame(*conn, encodeResponseHead(job.requestId, Status::kCancelled));
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.requestErrors;
    }
    queueFrame(*conn, encodeErrorResponse(job.requestId, e.what()));
  }
}

void WireServer::completeVerify(const std::shared_ptr<Conn>& conn,
                                PendingJob& job) {
  try {
    const SimulationResult& result = job.verify.get();
    queueFrame(*conn, encodeVerifyResponse(job.requestId, result));
    std::lock_guard<std::mutex> lock(statsMu_);
    ++stats_.requestsCompleted;
  } catch (const serve::CancelledError&) {
    {
      std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.cancelledResponses;
    }
    queueFrame(*conn, encodeResponseHead(job.requestId, Status::kCancelled));
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.requestErrors;
    }
    queueFrame(*conn, encodeErrorResponse(job.requestId, e.what()));
  }
}

std::shared_ptr<const std::string> WireServer::encodedStreamFor(
    const std::string& key, const CoreProveResult& result) {
  if (const auto it = streamMemo_.find(key); it != streamMemo_.end()) {
    if (auto cert = it->second.lock()) {
      std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.streamEncodeReuses;
      return cert;
    }
  }
  auto cert = std::make_shared<const std::string>(
      encodeCertificateStream(result.propertyHolds, result.labels));
  streamMemo_[key] = cert;
  if (streamMemo_.size() > 128) {
    for (auto it = streamMemo_.begin(); it != streamMemo_.end();) {
      it = it->second.expired() ? streamMemo_.erase(it) : std::next(it);
    }
  }
  std::lock_guard<std::mutex> lock(statsMu_);
  ++stats_.streamEncodes;
  return cert;
}

void WireServer::queueFrame(Conn& conn, std::string payload) {
  if (conn.fd < 0) return;
  OutSeg seg;
  seg.owned = encodeFrame(payload);
  conn.queuedBytes += seg.owned.size();
  conn.out.push_back(std::move(seg));
}

void WireServer::queueCertificateStream(
    Conn& conn, std::uint64_t requestId,
    const std::shared_ptr<const std::string>& cert) {
  if (conn.fd < 0) return;
  {
    Encoder head;
    head.u64(requestId);
    head.u64(static_cast<std::uint64_t>(Status::kStreamBegin));
    head.u64(cert->size());
    queueFrame(conn, head.take());
  }
  const std::size_t chunk = std::max<std::size_t>(1, options_.chunkBytes);
  std::uint64_t chunks = 0;
  for (std::size_t off = 0; off < cert->size(); off += chunk) {
    const std::size_t len = std::min(chunk, cert->size() - off);
    // Per-client bytes: ONLY this little header.  The payload slice
    // references the shared encoded stream — scatter, not copy.
    Encoder head;
    head.u64(requestId);
    head.u64(static_cast<std::uint64_t>(Status::kChunk));
    head.u64(off);
    const std::string headBytes = head.take();

    OutSeg headSeg;
    Encoder framed;
    framed.u64(headBytes.size() + len);  // frame length prefix
    framed.raw(headBytes);
    headSeg.owned = framed.take();
    conn.queuedBytes += headSeg.owned.size();
    conn.out.push_back(std::move(headSeg));

    OutSeg payloadSeg;
    payloadSeg.backing = cert;
    payloadSeg.begin = off;
    payloadSeg.end = off + len;
    conn.queuedBytes += len;
    conn.out.push_back(std::move(payloadSeg));
    ++chunks;
  }
  queueFrame(conn, encodeResponseHead(requestId, Status::kStreamEnd));
  std::lock_guard<std::mutex> lock(statsMu_);
  stats_.chunksQueued += chunks;
  stats_.certificateBytesQueued += cert->size();
}

void WireServer::flushWrites(const std::shared_ptr<Conn>& conn) {
  while (conn->fd >= 0 && !conn->out.empty()) {
    OutSeg& seg = conn->out.front();
    const std::string_view view = seg.view();
    const std::size_t left = view.size() - seg.written;
    const ssize_t n = ::send(conn->fd, view.data() + seg.written, left,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      closeConn(conn);
      return;
    }
    conn->queuedBytes -= static_cast<std::size_t>(n);
    if (static_cast<std::size_t>(n) < left) {
      seg.written += static_cast<std::size_t>(n);
      std::lock_guard<std::mutex> lock(statsMu_);
      ++stats_.shortWrites;
      return;
    }
    conn->out.pop_front();
  }
}

void WireServer::closeConn(const std::shared_ptr<Conn>& conn) {
  if (conn->fd < 0) return;
  // Resource hygiene: sessions die with their connection (idempotent on
  // the service side; queued batches still complete).
  for (const std::uint64_t session : conn->sessions) {
    service_.closeVerifySession(session);
  }
  conn->sessions.clear();
  conns_.erase(conn->fd);
  ::close(conn->fd);
  conn->fd = -1;
  conn->out.clear();
  conn->queuedBytes = 0;
  std::lock_guard<std::mutex> lock(statsMu_);
  ++stats_.connectionsClosed;
}

}  // namespace lanecert::net
