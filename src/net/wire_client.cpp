#include "net/wire_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace lanecert::net {

void WireClient::connect(const std::string& host, std::uint16_t port,
                         int recvTimeoutMs) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw std::runtime_error("WireClient: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("WireClient: bad host " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close();
    throw std::runtime_error(std::string("WireClient: connect failed: ") +
                             std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recvTimeoutMs > 0) {
    timeval tv{};
    tv.tv_sec = recvTimeoutMs / 1000;
    tv.tv_usec = (recvTimeoutMs % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
}

void WireClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  parser_ = FrameParser{kDefaultMaxFrameBytes};
  completed_.clear();
  streams_.clear();
}

void WireClient::sendRaw(std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("WireClient: send failed: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::uint64_t WireClient::sendPing() {
  const std::uint64_t id = nextId_++;
  sendRaw(encodeFrame(encodePingRequest(id)));
  return id;
}

std::uint64_t WireClient::sendProve(const Graph& g,
                                    std::string_view property) {
  const std::uint64_t id = nextId_++;
  sendRaw(encodeFrame(encodeProveRequest(id, g, property)));
  return id;
}

std::uint64_t WireClient::sendVerify(const Graph& g,
                                     std::string_view property,
                                     const std::vector<std::string>& labels) {
  const std::uint64_t id = nextId_++;
  sendRaw(encodeFrame(encodeVerifyRequest(id, g, property, labels, false)));
  return id;
}

std::uint64_t WireClient::sendOpenSession(
    const Graph& g, std::string_view property,
    const std::vector<std::string>& labels) {
  const std::uint64_t id = nextId_++;
  sendRaw(encodeFrame(encodeVerifyRequest(id, g, property, labels, true)));
  return id;
}

std::uint64_t WireClient::sendReverify(
    std::uint64_t session, const std::vector<EdgeLabelEdit>& edits) {
  const std::uint64_t id = nextId_++;
  sendRaw(encodeFrame(encodeReverifyRequest(id, session, edits)));
  return id;
}

std::uint64_t WireClient::sendCloseSession(std::uint64_t session) {
  const std::uint64_t id = nextId_++;
  sendRaw(encodeFrame(encodeCloseSessionRequest(id, session)));
  return id;
}

bool WireClient::pump() {
  char buf[64 * 1024];
  const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
  if (n == 0) return false;
  if (n < 0) {
    if (errno == EINTR) return true;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      throw std::runtime_error("WireClient: recv timeout");
    }
    throw std::runtime_error(std::string("WireClient: recv failed: ") +
                             std::strerror(errno));
  }
  std::vector<std::string> frames;
  if (!parser_.feed(std::string_view(buf, static_cast<std::size_t>(n)),
                    frames)) {
    throw std::runtime_error("WireClient: framing error: " + parser_.error());
  }
  for (const std::string& frame : frames) processFrame(frame);
  return true;
}

void WireClient::processFrame(std::string_view frame) {
  const WireResponse resp = decodeResponse(frame);
  switch (resp.status) {
    case Status::kStreamBegin: {
      Decoder dec{std::string_view(resp.body)};
      StreamState st;
      st.announced = dec.u64();
      streams_[resp.requestId] = std::move(st);
      return;
    }
    case Status::kChunk: {
      auto it = streams_.find(resp.requestId);
      if (it == streams_.end()) {
        throw std::runtime_error("WireClient: chunk without stream-begin");
      }
      Decoder dec{std::string_view(resp.body)};
      const std::uint64_t offset = dec.u64();
      if (offset != it->second.bytes.size()) {
        throw std::runtime_error("WireClient: non-contiguous chunk offset");
      }
      it->second.bytes.append(resp.body.substr(dec.pos()));
      if (it->second.bytes.size() > it->second.announced) {
        throw std::runtime_error("WireClient: stream overflows announcement");
      }
      return;
    }
    case Status::kStreamEnd: {
      auto it = streams_.find(resp.requestId);
      if (it == streams_.end()) {
        throw std::runtime_error("WireClient: stream-end without begin");
      }
      if (it->second.bytes.size() != it->second.announced) {
        throw std::runtime_error("WireClient: stream shorter than announced");
      }
      Reply reply;
      reply.status = Status::kOk;
      reply.stream = std::move(it->second.bytes);
      streams_.erase(it);
      completed_[resp.requestId] = std::move(reply);
      return;
    }
    case Status::kOk: {
      Reply reply;
      reply.status = Status::kOk;
      reply.body = resp.body;
      completed_[resp.requestId] = std::move(reply);
      return;
    }
    case Status::kRejected: {
      Reply reply;
      reply.status = Status::kRejected;
      reply.retryAfterMs = decodeRetryAfterMs(resp.body);
      completed_[resp.requestId] = std::move(reply);
      return;
    }
    case Status::kError: {
      Reply reply;
      reply.status = Status::kError;
      Decoder dec{std::string_view(resp.body)};
      reply.error = dec.bytes();
      completed_[resp.requestId] = std::move(reply);
      return;
    }
    case Status::kCancelled:
    case Status::kShuttingDown: {
      Reply reply;
      reply.status = resp.status;
      completed_[resp.requestId] = std::move(reply);
      return;
    }
  }
  throw std::runtime_error("WireClient: unknown response status");
}

WireClient::Reply WireClient::wait(std::uint64_t requestId) {
  while (true) {
    if (const auto it = completed_.find(requestId); it != completed_.end()) {
      Reply reply = std::move(it->second);
      completed_.erase(it);
      return reply;
    }
    if (fd_ < 0) throw std::runtime_error("WireClient: not connected");
    if (!pump()) {
      throw std::runtime_error(
          "WireClient: connection closed before response");
    }
  }
}

}  // namespace lanecert::net
