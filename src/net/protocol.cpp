#include "net/protocol.hpp"

#include <limits>

#include "mso/properties.hpp"

namespace lanecert::net {

namespace {

/// Rejects a claimed element count that cannot possibly fit in the bytes
/// left: every element consumes at least `minBytesPer` bytes, so any
/// larger claim is a hostile length prefix — fail BEFORE reserving
/// (mirrors records.cpp checkLen at the record layer).
void checkCount(std::uint64_t count, const Decoder& dec,
                std::size_t minBytesPer = 1) {
  if (count > dec.remaining() / minBytesPer) throw DecodeError{};
}

void encodeGraph(Encoder& enc, const Graph& g) {
  enc.u64(static_cast<std::uint64_t>(g.numVertices()));
  enc.u64(static_cast<std::uint64_t>(g.numEdges()));
  for (const Edge& e : g.edges()) {
    enc.u64(static_cast<std::uint64_t>(e.u));
    enc.u64(static_cast<std::uint64_t>(e.v));
  }
}

Graph decodeGraph(Decoder& dec, std::size_t maxVertices) {
  const std::uint64_t n = dec.u64();
  const std::uint64_t m = dec.u64();
  if (n > static_cast<std::uint64_t>(std::numeric_limits<VertexId>::max())) {
    throw WireError("graph: vertex count out of range");
  }
  // Edges are paid for in wire bytes (checkCount below), but vertices are
  // free on the wire while Graph(n) materializes n adjacency vectors — a
  // tiny hostile header must not buy gigabytes, so cap n BEFORE the
  // construction.
  if (n > maxVertices) {
    throw WireError("graph: vertex count " + std::to_string(n) +
                    " exceeds server cap " + std::to_string(maxVertices));
  }
  checkCount(m, dec, 2);  // an edge is at least two 1-byte varints
  Graph g(static_cast<VertexId>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    const std::uint64_t u = dec.u64();
    const std::uint64_t v = dec.u64();
    if (u >= n || v >= n) throw WireError("graph: endpoint out of range");
    try {
      g.addEdge(static_cast<VertexId>(u), static_cast<VertexId>(v));
    } catch (const std::exception& e) {
      throw WireError(std::string("graph: ") + e.what());
    }
  }
  return g;
}

void decodeLabels(Decoder& dec, std::vector<std::string>& labels) {
  const std::uint64_t count = dec.u64();
  checkCount(count, dec);
  labels.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) labels.push_back(dec.bytes());
}

}  // namespace

PropertyPtr propertyByName(const std::string& name) {
  // The registry grammar lives in the mso layer (mso/property_names.cpp)
  // so dist workers resolve the same names without linking net; this
  // wrapper keeps the wire-facing entry point where clients expect it.
  return ::lanecert::propertyByName(name);
}

const char* opName(Op op) {
  switch (op) {
    case Op::kPing:
      return "ping";
    case Op::kProve:
      return "prove";
    case Op::kVerify:
      return "verify";
    case Op::kOpenSession:
      return "open-session";
    case Op::kReverify:
      return "reverify";
    case Op::kCloseSession:
      return "close-session";
  }
  return "?";
}

const char* statusName(Status status) {
  switch (status) {
    case Status::kOk:
      return "ok";
    case Status::kStreamBegin:
      return "stream-begin";
    case Status::kChunk:
      return "chunk";
    case Status::kStreamEnd:
      return "stream-end";
    case Status::kRejected:
      return "rejected";
    case Status::kError:
      return "error";
    case Status::kCancelled:
      return "cancelled";
    case Status::kShuttingDown:
      return "shutting-down";
  }
  return "?";
}

std::string encodeFrame(std::string_view payload) {
  Encoder enc;
  enc.reserve(payload.size() + 10);
  enc.u64(payload.size());
  enc.raw(payload);
  return enc.take();
}

bool FrameParser::fail(const std::string& why) {
  error_ = why;
  payload_.clear();
  payload_.shrink_to_fit();
  return false;
}

bool FrameParser::feed(std::string_view bytes, std::vector<std::string>& out) {
  if (failed()) return false;
  std::size_t i = 0;
  while (i < bytes.size()) {
    if (!haveLen_) {
      // Byte-wise LEB128 with the codec's 10-byte / 64-bit cap — an
      // unterminated run of continuation bytes or bits beyond the 64th
      // must reject, not scan on.
      const auto b = static_cast<unsigned char>(bytes[i++]);
      if (lenShift_ == 63 && (b & ~1u) != 0) {
        return fail("frame length varint exceeds 64 bits");
      }
      len_ |= static_cast<std::uint64_t>(b & 0x7f) << lenShift_;
      if ((b & 0x80) != 0) {
        lenShift_ += 7;
        continue;
      }
      // Header complete — the quota check runs BEFORE any reserve.
      if (len_ == 0) return fail("zero-length frame");
      if (len_ > maxFrame_) {
        return fail("frame length " + std::to_string(len_) +
                    " exceeds connection quota " + std::to_string(maxFrame_));
      }
      haveLen_ = true;
      payload_.reserve(static_cast<std::size_t>(len_));
    }
    const std::size_t want = static_cast<std::size_t>(len_) - payload_.size();
    const std::size_t take = std::min(want, bytes.size() - i);
    payload_.append(bytes.data() + i, take);
    i += take;
    if (payload_.size() == len_) {
      out.push_back(std::move(payload_));
      payload_.clear();
      len_ = 0;
      lenShift_ = 0;
      haveLen_ = false;
    }
  }
  return true;
}

std::string encodePingRequest(std::uint64_t requestId) {
  Encoder enc;
  enc.u64(requestId);
  enc.u64(static_cast<std::uint64_t>(Op::kPing));
  return enc.take();
}

std::string encodeProveRequest(std::uint64_t requestId, const Graph& g,
                               std::string_view property) {
  Encoder enc;
  enc.u64(requestId);
  enc.u64(static_cast<std::uint64_t>(Op::kProve));
  encodeGraph(enc, g);
  enc.bytes(property);
  return enc.take();
}

std::string encodeVerifyRequest(std::uint64_t requestId, const Graph& g,
                                std::string_view property,
                                const std::vector<std::string>& labels,
                                bool openSession) {
  Encoder enc;
  enc.u64(requestId);
  enc.u64(static_cast<std::uint64_t>(openSession ? Op::kOpenSession
                                                 : Op::kVerify));
  encodeGraph(enc, g);
  enc.bytes(property);
  enc.u64(labels.size());
  for (const std::string& l : labels) enc.bytes(l);
  return enc.take();
}

std::string encodeReverifyRequest(std::uint64_t requestId,
                                  std::uint64_t session,
                                  const std::vector<EdgeLabelEdit>& edits) {
  Encoder enc;
  enc.u64(requestId);
  enc.u64(static_cast<std::uint64_t>(Op::kReverify));
  enc.u64(session);
  enc.u64(edits.size());
  for (const EdgeLabelEdit& e : edits) {
    enc.u64(static_cast<std::uint64_t>(e.edge));
    enc.bytes(e.bytes);
  }
  return enc.take();
}

std::string encodeCloseSessionRequest(std::uint64_t requestId,
                                      std::uint64_t session) {
  Encoder enc;
  enc.u64(requestId);
  enc.u64(static_cast<std::uint64_t>(Op::kCloseSession));
  enc.u64(session);
  return enc.take();
}

WireRequest decodeRequest(std::string_view framePayload,
                          std::size_t maxVertices) {
  Decoder dec{framePayload};
  WireRequest req;
  req.requestId = dec.u64();
  const std::uint64_t op = dec.u64();
  if (op > static_cast<std::uint64_t>(Op::kCloseSession)) {
    throw WireError("unknown op " + std::to_string(op));
  }
  req.op = static_cast<Op>(op);
  switch (req.op) {
    case Op::kPing:
      break;
    case Op::kProve:
      req.graph = decodeGraph(dec, maxVertices);
      req.property = dec.bytes();
      break;
    case Op::kVerify:
    case Op::kOpenSession:
      req.graph = decodeGraph(dec, maxVertices);
      req.property = dec.bytes();
      decodeLabels(dec, req.labels);
      if (req.labels.size() !=
          static_cast<std::size_t>(req.graph.numEdges())) {
        throw WireError("label count does not match edge count");
      }
      break;
    case Op::kReverify: {
      req.session = dec.u64();
      const std::uint64_t count = dec.u64();
      checkCount(count, dec, 2);  // edge id + length prefix
      req.edits.reserve(static_cast<std::size_t>(count));
      for (std::uint64_t i = 0; i < count; ++i) {
        EdgeLabelEdit edit;
        edit.edge = static_cast<EdgeId>(dec.u64());
        edit.bytes = dec.bytes();
        req.edits.push_back(std::move(edit));
      }
      break;
    }
    case Op::kCloseSession:
      req.session = dec.u64();
      break;
  }
  if (!dec.atEnd()) throw WireError("trailing bytes after request body");
  return req;
}

std::string encodeResponseHead(std::uint64_t requestId, Status status) {
  Encoder enc;
  enc.u64(requestId);
  enc.u64(static_cast<std::uint64_t>(status));
  return enc.take();
}

std::string encodeRejected(std::uint64_t requestId,
                           std::uint64_t retryAfterMs) {
  Encoder enc;
  enc.u64(requestId);
  enc.u64(static_cast<std::uint64_t>(Status::kRejected));
  enc.u64(retryAfterMs);
  return enc.take();
}

std::string encodeErrorResponse(std::uint64_t requestId,
                                std::string_view message) {
  Encoder enc;
  enc.u64(requestId);
  enc.u64(static_cast<std::uint64_t>(Status::kError));
  enc.bytes(message);
  return enc.take();
}

std::string encodeVerifyResponse(std::uint64_t requestId,
                                 const SimulationResult& r) {
  Encoder enc;
  enc.u64(requestId);
  enc.u64(static_cast<std::uint64_t>(Status::kOk));
  enc.boolean(r.allAccept);
  enc.u64(r.rejecting.size());
  for (const VertexId v : r.rejecting) enc.u64(static_cast<std::uint64_t>(v));
  enc.u64(r.maxLabelBits);
  enc.u64(r.totalLabelBits);
  return enc.take();
}

std::string encodeSessionResponse(std::uint64_t requestId,
                                  std::uint64_t session) {
  Encoder enc;
  enc.u64(requestId);
  enc.u64(static_cast<std::uint64_t>(Status::kOk));
  enc.u64(session);
  return enc.take();
}

WireResponse decodeResponse(std::string_view framePayload) {
  Decoder dec{framePayload};
  WireResponse resp;
  resp.requestId = dec.u64();
  const std::uint64_t status = dec.u64();
  if (status > static_cast<std::uint64_t>(Status::kShuttingDown)) {
    throw WireError("unknown status " + std::to_string(status));
  }
  resp.status = static_cast<Status>(status);
  resp.body.assign(framePayload.substr(dec.pos()));
  return resp;
}

SimulationResult decodeVerifyResult(std::string_view body) {
  Decoder dec{body};
  SimulationResult r;
  r.allAccept = dec.boolean();
  const std::uint64_t count = dec.u64();
  checkCount(count, dec);
  r.rejecting.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    r.rejecting.push_back(static_cast<VertexId>(dec.u64()));
  }
  r.maxLabelBits = static_cast<std::size_t>(dec.u64());
  r.totalLabelBits = static_cast<std::size_t>(dec.u64());
  return r;
}

std::uint64_t decodeSessionHandle(std::string_view body) {
  Decoder dec{body};
  return dec.u64();
}

std::uint64_t decodeRetryAfterMs(std::string_view body) {
  Decoder dec{body};
  return dec.u64();
}

std::string encodeCertificateStream(bool propertyHolds,
                                    const std::vector<std::string>& labels) {
  Encoder enc;
  std::size_t total = 16;
  for (const std::string& l : labels) total += l.size() + 10;
  enc.reserve(total);
  enc.boolean(propertyHolds);
  enc.u64(labels.size());
  for (const std::string& l : labels) enc.bytes(l);
  return enc.take();
}

CertificateStream decodeCertificateStream(std::string_view stream) {
  Decoder dec{stream};
  CertificateStream cert;
  cert.propertyHolds = dec.boolean();
  decodeLabels(dec, cert.labels);
  if (!dec.atEnd()) throw WireError("trailing bytes after certificate");
  return cert;
}

}  // namespace lanecert::net
