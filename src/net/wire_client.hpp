#pragma once
// WireClient — blocking, pipelining-capable client for the wire protocol.
//
// One client owns one connection.  send*() writes a request frame and
// returns its requestId immediately, so any number of requests can be in
// flight; wait(id) reads frames (reassembling certificate streams chunk
// by chunk, checking offsets are contiguous) until THAT request reaches a
// terminal status.  Single-threaded by design: the load driver runs one
// client per worker thread, the demo and tests use one inline.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"

namespace lanecert::net {

class WireClient {
 public:
  WireClient() = default;
  ~WireClient() { close(); }

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connects (throws std::runtime_error on failure).  `recvTimeoutMs`
  /// bounds every blocking read; 0 = no timeout.
  void connect(const std::string& host, std::uint16_t port,
               int recvTimeoutMs = 30000);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  // --- pipelined sends (return the requestId to wait on) ------------------
  std::uint64_t sendPing();
  std::uint64_t sendProve(const Graph& g, std::string_view property);
  std::uint64_t sendVerify(const Graph& g, std::string_view property,
                           const std::vector<std::string>& labels);
  std::uint64_t sendOpenSession(const Graph& g, std::string_view property,
                                const std::vector<std::string>& labels);
  std::uint64_t sendReverify(std::uint64_t session,
                             const std::vector<EdgeLabelEdit>& edits);
  std::uint64_t sendCloseSession(std::uint64_t session);

  /// A terminal reply.  For kOk, `body` holds the op-specific bytes; for
  /// a streamed certificate, `stream` holds the reassembled bytes
  /// (byte-identical to the server's single encode).
  struct Reply {
    Status status = Status::kOk;
    std::string body;
    std::string stream;
    std::uint64_t retryAfterMs = 0;
    std::string error;

    [[nodiscard]] bool ok() const { return status == Status::kOk; }
  };

  /// Blocks until `requestId` completes (throws std::runtime_error on
  /// connection loss, protocol violation, or recv timeout).  Replies of
  /// OTHER pipelined requests arriving first are retained and returned by
  /// their own wait() calls.
  Reply wait(std::uint64_t requestId);

  // --- blocking conveniences ----------------------------------------------
  Reply ping() { return wait(sendPing()); }
  Reply prove(const Graph& g, std::string_view property) {
    return wait(sendProve(g, property));
  }
  Reply verify(const Graph& g, std::string_view property,
               const std::vector<std::string>& labels) {
    return wait(sendVerify(g, property, labels));
  }

  /// Raw frame write — fuzz harnesses use this to inject hostile bytes.
  void sendRaw(std::string_view bytes);

 private:
  struct StreamState {
    std::string bytes;
    std::uint64_t announced = 0;
  };

  /// Reads one socket chunk and processes every completed frame; returns
  /// false on clean EOF.
  bool pump();
  void processFrame(std::string_view frame);

  int fd_ = -1;
  std::uint64_t nextId_ = 1;
  FrameParser parser_{kDefaultMaxFrameBytes};
  std::unordered_map<std::uint64_t, Reply> completed_;
  std::unordered_map<std::uint64_t, StreamState> streams_;
};

}  // namespace lanecert::net
