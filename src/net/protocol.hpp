#pragma once
// Length-prefixed binary wire protocol of the serving front-end.
//
// A connection is a byte stream of FRAMES; a frame is one LEB128 varint
// length prefix followed by exactly that many payload bytes.  The varint
// framing is the SAME encoding the certificate codec uses (pls/codec.hpp),
// so a wire implementation in any language needs exactly one integer
// format, and the certificate payloads inside responses are byte-identical
// to what the in-process API produces.
//
//   frame    := varint(len) payload[len]          1 <= len <= maxFrameBytes
//   request  := varint(requestId) u8(op) body
//   response := varint(requestId) u8(status) body
//
// Requests and responses are correlated by requestId (client-chosen,
// opaque to the server), so clients may PIPELINE: any number of requests
// can be in flight on one connection, limited only by the server's
// per-connection quota, and responses complete in whatever order the
// service finishes them.
//
// Small results (verify verdicts, session handles) come back as one kOk
// frame.  Certificate payloads (prove results — potentially hundreds of
// MB) are STREAMED: a kStreamBegin frame announcing the total byte count,
// then kChunk frames each carrying an offset plus a slice of the encoded
// certificate stream, then kStreamEnd.  The certificate stream bytes are
// encoded ONCE per distinct result and scattered to every subscriber via
// shared-payload slices (see wire_server.cpp), so N clients asking for one
// labeling cost one encode, not N.
//
// Defense before allocation: the frame parser rejects a length prefix
// exceeding the connection's quota BEFORE reserving any buffer space
// (mirroring the Decoder::remaining() hardening of the record codec — a
// hostile header must never buy memory), and every list count inside a
// request body is checked against the bytes actually present before any
// container reserve.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "mso/property.hpp"
#include "pls/codec.hpp"
#include "pls/scheme.hpp"
#include "runtime/label_store.hpp"

namespace lanecert::net {

/// Protocol-level failure (framing desync, unknown op, body/graph that
/// cannot be built).  The server answers a decodable-but-invalid request
/// with a kError frame; a framing-level violation closes the connection —
/// after a length-prefix lie the stream can never resynchronize.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

enum class Op : std::uint8_t {
  kPing = 0,          ///< body: empty; response kOk, empty
  kProve = 1,         ///< body: graph, property; response: streamed cert
  kVerify = 2,        ///< body: graph, property, labels; response kOk verdict
  kOpenSession = 3,   ///< body: like kVerify; response kOk varint(session)
  kReverify = 4,      ///< body: varint(session), edits; response kOk verdict
  kCloseSession = 5,  ///< body: varint(session); response kOk, empty
};

enum class Status : std::uint8_t {
  kOk = 0,            ///< complete response; body is op-specific
  kStreamBegin = 1,   ///< body: varint(totalBytes) of the certificate stream
  kChunk = 2,         ///< body: varint(offset) + raw slice
  kStreamEnd = 3,     ///< body: empty; the stream is complete
  kRejected = 4,      ///< body: varint(retryAfterMs) — quota/backpressure
  kError = 5,         ///< body: length-prefixed message; permanent failure
  kCancelled = 6,     ///< body: empty; the job was discarded by a drain
  kShuttingDown = 7,  ///< body: empty; server is draining, do not retry here
};

[[nodiscard]] const char* opName(Op op);
[[nodiscard]] const char* statusName(Status status);

/// Resolves a wire property name ("connectivity", "forest", "3col",
/// "vc:<c>", ...) to a property; nullptr for unknown names.  This is THE
/// name grammar of the protocol — the CLI shares it.
[[nodiscard]] PropertyPtr propertyByName(const std::string& name);

/// Default per-connection frame quota.  Large enough for a full verify
/// request over the bench shapes, small enough that one hostile connection
/// cannot claim unbounded memory.
inline constexpr std::size_t kDefaultMaxFrameBytes = 64u << 20;

/// Default cap on the vertex count of a decoded graph.  The edge list is
/// already bounded by the frame quota (every edge costs wire bytes), but
/// vertices are free on the wire — Graph(n) materializes n adjacency
/// vectors, so a ~12-byte frame claiming n = 2^31-1 would buy gigabytes.
/// The cap bounds that transient allocation; servers can tune it via
/// WireServerOptions::maxVertices.
inline constexpr std::size_t kDefaultMaxVertices = 1u << 20;

/// Wraps `payload` in a length-prefixed frame.
[[nodiscard]] std::string encodeFrame(std::string_view payload);

/// Incremental frame reassembly over an arbitrary chunking of the stream —
/// bytes arrive as the socket delivers them, one byte at a time in the
/// worst case.  The length prefix is parsed byte-wise; the payload buffer
/// is reserved only AFTER the announced length passes the quota check, so
/// a header claiming more bytes than `maxFrameBytes` fails the connection
/// before any proportional allocation.
class FrameParser {
 public:
  explicit FrameParser(std::size_t maxFrameBytes = kDefaultMaxFrameBytes)
      : maxFrame_(maxFrameBytes) {}

  /// Consumes `bytes`, appending every completed frame payload to `out`.
  /// Returns false on a protocol violation (oversized/malformed/zero
  /// length prefix); the stream is then permanently broken — error()
  /// says why and further feed() calls keep failing.
  [[nodiscard]] bool feed(std::string_view bytes,
                          std::vector<std::string>& out);

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool failed() const { return !error_.empty(); }
  /// Bytes currently buffered for the in-progress frame (fuzz harnesses
  /// assert this never exceeds the quota — the no-over-allocation check).
  [[nodiscard]] std::size_t bufferedBytes() const { return payload_.size(); }

 private:
  bool fail(const std::string& why);

  std::size_t maxFrame_;
  // Length-prefix accumulator (LEB128, 10-byte cap like the codec).
  std::uint64_t len_ = 0;
  int lenShift_ = 0;
  bool haveLen_ = false;
  std::string payload_;
  std::string error_;
};

/// A decoded request envelope.  Only the fields of the request's `op` are
/// meaningful; the rest stay default-constructed.
struct WireRequest {
  std::uint64_t requestId = 0;
  Op op = Op::kPing;
  Graph graph;                      // kProve / kVerify / kOpenSession
  std::string property;             // kProve / kVerify / kOpenSession
  std::vector<std::string> labels;  // kVerify / kOpenSession
  std::uint64_t session = 0;        // kReverify / kCloseSession
  std::vector<EdgeLabelEdit> edits;  // kReverify
};

// --- Request encoding (client side) ---------------------------------------
[[nodiscard]] std::string encodePingRequest(std::uint64_t requestId);
[[nodiscard]] std::string encodeProveRequest(std::uint64_t requestId,
                                             const Graph& g,
                                             std::string_view property);
[[nodiscard]] std::string encodeVerifyRequest(
    std::uint64_t requestId, const Graph& g, std::string_view property,
    const std::vector<std::string>& labels, bool openSession = false);
[[nodiscard]] std::string encodeReverifyRequest(
    std::uint64_t requestId, std::uint64_t session,
    const std::vector<EdgeLabelEdit>& edits);
[[nodiscard]] std::string encodeCloseSessionRequest(std::uint64_t requestId,
                                                    std::uint64_t session);

/// Parses one frame payload into a request.  Throws DecodeError on
/// truncated/hostile bytes and WireError on grammar violations (unknown
/// op, invalid graph, label-count mismatch).  Every list count is bounded
/// by the decoder's remaining() before any reserve, and graph vertex
/// counts are bounded by `maxVertices` before any Graph construction.
[[nodiscard]] WireRequest decodeRequest(
    std::string_view framePayload,
    std::size_t maxVertices = kDefaultMaxVertices);

// --- Response encoding (server side) / decoding (client side) -------------
/// Response header shared by every status.
[[nodiscard]] std::string encodeResponseHead(std::uint64_t requestId,
                                             Status status);
[[nodiscard]] std::string encodeRejected(std::uint64_t requestId,
                                         std::uint64_t retryAfterMs);
[[nodiscard]] std::string encodeErrorResponse(std::uint64_t requestId,
                                              std::string_view message);
[[nodiscard]] std::string encodeVerifyResponse(std::uint64_t requestId,
                                               const SimulationResult& r);
[[nodiscard]] std::string encodeSessionResponse(std::uint64_t requestId,
                                                std::uint64_t session);

/// One decoded response envelope; `body` is everything after the status
/// byte, still encoded (op-specific helpers below decode it).
struct WireResponse {
  std::uint64_t requestId = 0;
  Status status = Status::kOk;
  std::string body;
};
[[nodiscard]] WireResponse decodeResponse(std::string_view framePayload);

[[nodiscard]] SimulationResult decodeVerifyResult(std::string_view body);
[[nodiscard]] std::uint64_t decodeSessionHandle(std::string_view body);
[[nodiscard]] std::uint64_t decodeRetryAfterMs(std::string_view body);

// --- Certificate stream ----------------------------------------------------
// The streamed prove payload.  Encoded once per distinct result:
//   bool(propertyHolds) varint(labelCount) labelCount * bytes(label)
// Byte-compare this against a fresh encode of the in-process
// CoreProveResult to check end-to-end integrity (the wire smoke does).
[[nodiscard]] std::string encodeCertificateStream(
    bool propertyHolds, const std::vector<std::string>& labels);

struct CertificateStream {
  bool propertyHolds = false;
  std::vector<std::string> labels;
};
[[nodiscard]] CertificateStream decodeCertificateStream(
    std::string_view stream);

}  // namespace lanecert::net
