#pragma once
// WireServer — the async socket front-end over LaneCertService.
//
// One server owns one listening socket, one poll(2) event loop, and one
// LaneCertService; the loop thread does no certificate work itself — it
// parses frames, submits jobs to the service (whose shared worker pool
// does the heavy lifting), and scatters results back to connections.
// Clients pipeline freely: responses complete in service-completion
// order, correlated by requestId.
//
// Streaming without per-client copies: a prove result's certificate
// stream is encoded ONCE into a shared immutable buffer (memoized by the
// job's exact content key, the same identity the service's result cache
// coalesces on), then every subscriber's write queue holds SLICES of that
// buffer — per-chunk frame headers are the only per-client bytes.  A
// thousand clients asking for one labeling cost one encode and zero
// payload copies.
//
// Admission control, layered:
//   * per-connection in-flight quota (maxInflightPerConn) — one greedy
//     pipeliner cannot monopolize the service queue; excess requests get
//     an immediate kRejected frame with a retry-after hint;
//   * the service's own maxQueueDepth backpressure — RejectedError maps
//     to the same kRejected frame, carrying the service's retryAfter();
//   * per-connection write-queue cap — a subscriber that stops reading
//     while certificates stream at it is closed, not buffered forever.
//
// Graceful drain (SIGTERM or requestDrain()): stop accepting connections,
// answer new requests with kShuttingDown, surface the service's
// cancelPending() — discarded jobs fail their futures with
// CancelledError, which reaches clients as kCancelled frames — then flush
// every write queue, send FIN (shutdown of the write side), and linger
// reading until each peer closes or the grace deadline passes.  The
// linger matters: an abrupt close() can turn into an RST, and an RST
// discards the peer's unread receive buffer — the very replies that were
// just flushed.  Every request that was ever read gets a terminal frame;
// the service destructor's drain-on-destruct covers whatever was already
// running.  stop() is the hard variant (immediate close), for teardown.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/protocol.hpp"
#include "serve/service.hpp"

namespace lanecert::net {

struct WireServerOptions {
  std::string bindAddress = "127.0.0.1";
  /// 0 = ephemeral; the bound port is readable via port() immediately
  /// after construction (the listener is created in the constructor).
  std::uint16_t port = 0;
  int maxConnections = 256;
  /// Per-connection frame quota: a frame header claiming more than this
  /// fails the connection BEFORE any buffer reserve.
  std::size_t maxFrameBytes = kDefaultMaxFrameBytes;
  /// Cap on the vertex count of any decoded request graph — edges cost
  /// wire bytes, vertices do not, so this bounds what a tiny hostile
  /// header can make Graph(n) allocate.  Rejected requests get kError.
  std::size_t maxVertices = kDefaultMaxVertices;
  /// Per-connection in-flight request quota (async ops); excess requests
  /// are answered with kRejected + retry-after.  <= 0 disables the quota.
  int maxInflightPerConn = 64;
  /// Certificate streams are scattered in chunks of this many bytes.
  std::size_t chunkBytes = 64 * 1024;
  /// Slow-consumer bound: a connection whose unsent output exceeds this
  /// is closed (it has stopped reading while results stream at it).
  std::size_t maxQueuedBytesPerConn = 256u << 20;
  /// Drain grace: after requestDrain(), connections that still cannot
  /// flush within this window are force-closed so shutdown terminates.
  int drainGraceMs = 5000;
  /// Options of the owned LaneCertService.
  serve::ServiceOptions service;
};

/// Monotonic counters, snapshot via stats().
struct WireServerStats {
  std::uint64_t connectionsAccepted = 0;
  std::uint64_t connectionsClosed = 0;
  std::uint64_t framesRead = 0;
  std::uint64_t requestsCompleted = 0;  ///< terminal non-error responses
  std::uint64_t quotaRejected = 0;      ///< per-connection in-flight quota
  std::uint64_t serviceRejected = 0;    ///< service backpressure (retry-after)
  std::uint64_t shuttingDownRejected = 0;
  std::uint64_t protocolErrors = 0;  ///< framing violations (connection dies)
  std::uint64_t requestErrors = 0;   ///< kError responses (connection lives)
  std::uint64_t cancelledResponses = 0;
  std::uint64_t streamsSent = 0;
  std::uint64_t streamEncodes = 0;       ///< distinct certificate encodes
  std::uint64_t streamEncodeReuses = 0;  ///< scatters served from the memo
  std::uint64_t chunksQueued = 0;
  std::uint64_t certificateBytesQueued = 0;
  std::uint64_t shortWrites = 0;  ///< partial socket writes (backpressure)
  std::uint64_t drains = 0;
};

class WireServer {
 public:
  /// Binds and listens immediately (throws std::runtime_error on failure);
  /// the event loop starts with run()/start().
  explicit WireServer(WireServerOptions options = {});
  /// stop()s, then drains the owned service.
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  /// The owned service — for tests and stats; jobs submitted directly
  /// here share the pool and caches with wire traffic.
  [[nodiscard]] serve::LaneCertService& service() { return service_; }

  /// Runs the event loop on the CALLING thread until a drain completes.
  void run();
  /// Runs the event loop on a background thread; pair with stop().
  void start();
  /// Initiates graceful drain from any thread or a signal handler
  /// (async-signal-safe: one write to the wake pipe).
  void requestDrain();
  /// Hard stop: closes every connection immediately (no drain linger) and
  /// joins the start() thread.  No-op when not started.
  void stop();
  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  /// Installs a SIGTERM + SIGINT handler that requestDrain()s THIS server
  /// (one server per process — the handler holds a static wake fd).
  void installSignalDrain();

  [[nodiscard]] WireServerStats stats() const;

 private:
  /// One out-queue segment: either small owned header bytes, or a slice
  /// of a shared certificate stream (no payload copy per client).
  struct OutSeg {
    std::string owned;
    std::shared_ptr<const std::string> backing;  ///< null => owned bytes
    std::size_t begin = 0, end = 0;              ///< slice when backing
    std::size_t written = 0;

    [[nodiscard]] std::string_view view() const {
      return backing ? std::string_view(*backing).substr(begin, end - begin)
                     : std::string_view(owned);
    }
  };

  struct Conn {
    int fd = -1;
    FrameParser parser;
    std::deque<OutSeg> out;
    std::size_t queuedBytes = 0;
    int inflight = 0;
    std::vector<std::uint64_t> sessions;  ///< closed with the connection

    explicit Conn(std::size_t maxFrame) : parser(maxFrame) {}
  };

  struct PendingJob {
    std::weak_ptr<Conn> conn;
    std::uint64_t requestId = 0;
    Op op = Op::kProve;
    std::shared_future<CoreProveResult> prove;
    std::shared_future<SimulationResult> verify;
    std::string streamKey;  ///< prove: encode-memo key (exact job content)
  };

  void loop();
  void acceptReady();
  void readReady(const std::shared_ptr<Conn>& conn);
  void handleFrame(const std::shared_ptr<Conn>& conn, std::string_view frame);
  void dispatch(const std::shared_ptr<Conn>& conn, WireRequest&& req);
  void pollCompletions();
  void completeProve(const std::shared_ptr<Conn>& conn, PendingJob& job);
  void completeVerify(const std::shared_ptr<Conn>& conn, PendingJob& job);
  void queueFrame(Conn& conn, std::string payload);
  void queueCertificateStream(Conn& conn, std::uint64_t requestId,
                              const std::shared_ptr<const std::string>& cert);
  void flushWrites(const std::shared_ptr<Conn>& conn);
  void closeConn(const std::shared_ptr<Conn>& conn);
  void beginDrain();
  /// Hard teardown: closes every connection and the listener, drops
  /// pending jobs (their futures die with the service drain).
  void shutdownNow();
  [[nodiscard]] std::shared_ptr<const std::string> encodedStreamFor(
      const std::string& key, const CoreProveResult& result);

  const WireServerOptions options_;
  serve::LaneCertService service_;

  int listenFd_ = -1;
  int wakeRead_ = -1;
  int wakeWrite_ = -1;
  std::uint16_t port_ = 0;

  std::unordered_map<int, std::shared_ptr<Conn>> conns_;
  std::vector<PendingJob> pending_;
  /// Exact-job-key -> encoded certificate stream; weak so memory follows
  /// the last subscriber out, pruned opportunistically.
  std::unordered_map<std::string, std::weak_ptr<const std::string>>
      streamMemo_;

  std::atomic<bool> draining_{false};
  bool drainStarted_ = false;
  /// Drain phase two: all terminal frames flushed, FIN sent, now reading
  /// until the peers close (or the grace deadline force-closes).
  bool lingering_ = false;
  std::chrono::steady_clock::time_point drainDeadline_{};
  std::thread loopThread_;
  std::atomic<bool> loopRunning_{false};

  mutable std::mutex statsMu_;
  WireServerStats stats_;
};

}  // namespace lanecert::net
