#pragma once
// Shared-memory image for multi-process verification (src/dist overview in
// dist_verifier.hpp).  The coordinator serializes everything a worker
// process needs — ids, incident-arc CSR topology, label bytes, verifier
// parameters, the property's registry name — into ONE anonymous shared
// mapping built BEFORE forking, so workers inherit the bytes at zero copy
// cost and zero serialization latency on the re-fork (recovery) path.
//
// The container deliberately reuses the snapshot framing discipline
// (snapshot/format.hpp): a fixed little-endian header, a section table, and
// contiguous (8-byte aligned) payloads, with magic + version + content hash
// + params fingerprint + per-section CRC-32 all validated BEFORE any
// payload byte is interpreted.  A freshly forked worker trusts nothing: the
// image is revalidated on every spawn, so a coordinator bug (or a stray
// write through the shared mapping) rejects loudly at worker startup
// instead of silently corrupting verdicts — the same "hostile bytes reject
// before proportional allocation" contract the snapshot loader and the wire
// decoder already enforce.
//
//   header (32 bytes):
//     magic             8 bytes  "LANEDSHM"
//     formatVersion     u32      kImageFormatVersion
//     sectionCount      u32      kImageSectionCount
//     contentHash       u64      FNV-1a chained over all section payloads
//     paramsFingerprint u64      FNV-1a of the kMeta payload
//   section table (kImageSectionCount entries, 24 bytes each, in id order):
//     id u32 | crc u32 (CRC-32 of the payload) | offset u64 | length u64
//   payloads, in table order, each offset 8-byte aligned (≤ 7 pad bytes
//   between sections), the last one ending exactly at the image size.
//
// Sections:
//   kMeta          varint stream: n, m, workers, threadsPerWorker,
//                  maxLanes, maxThrough, readMemo, property name (bytes)
//   kIds           n × u64 LE — IdAssignment::id(v) by dense vertex
//   kRowPtr        (n+1) × u64 LE — incident-arc CSR offsets (rowPtr[n]=2m)
//   kArcs          2m × u32 LE — edge id of each arc, vertex-major in arc
//                  order (exactly what a sorted label row is built from)
//   kLabelOffsets  (m+1) × u64 LE — label blob offsets, monotone
//   kLabelBytes    the concatenated label bytes; label e =
//                  blob[off[e], off[e+1])
//
// Multi-byte integers are read through memcpy loads (the mapping is only
// guaranteed 8-byte aligned per section), and label views alias the blob
// directly — LabelStore's string_view constructor builds over them with no
// per-label copies, which is what makes worker startup O(partition), not
// O(graph).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "core/verifier.hpp"
#include "graph/graph.hpp"

namespace lanecert::dist {

inline constexpr std::string_view kImageMagic{"LANEDSHM", 8};
/// Bump on ANY layout or meta-encoding change; stale workers then reject.
inline constexpr std::uint32_t kImageFormatVersion = 1;

enum class ImageSection : std::uint32_t {
  kMeta = 1,
  kIds = 2,
  kRowPtr = 3,
  kArcs = 4,
  kLabelOffsets = 5,
  kLabelBytes = 6,
};
inline constexpr std::size_t kImageSectionCount = 6;
inline constexpr std::size_t kImageHeaderBytes = 8 + 4 + 4 + 8 + 8;
inline constexpr std::size_t kImageSectionEntryBytes = 4 + 4 + 8 + 8;

/// Everything in the kMeta section: the run configuration a worker cannot
/// derive from the arrays.
struct ImageMeta {
  std::uint64_t numVertices = 0;
  std::uint64_t numEdges = 0;
  std::uint32_t workers = 1;          ///< K — partition count
  std::uint32_t threadsPerWorker = 1;
  CoreVerifierParams params;
  std::string property;  ///< registry name (lanecert::propertyByName)
};

/// Exact image size for this configuration (header + table + aligned
/// payloads).  The coordinator sizes its mapping with this.
[[nodiscard]] std::size_t imageSizeBytes(const Graph& g,
                                         const std::vector<std::string>& labels,
                                         const ImageMeta& meta);

/// Serializes graph + ids + labels + meta into [dst, dst + size).
/// `size` must equal imageSizeBytes(...) (throws std::invalid_argument
/// otherwise, or when meta counts disagree with the graph/labels).
void writeImage(char* dst, std::size_t size, const Graph& g,
                const IdAssignment& ids,
                const std::vector<std::string>& labels, const ImageMeta& meta);

/// Validated zero-copy reader.  open() checks magic, version, section
/// table geometry, both hashes, every CRC, and the structural invariants
/// of each array (rowPtr monotone ending at 2m, arc edge ids < m, label
/// offsets monotone ending at the blob size) before returning — accessors
/// then index without further checks.  The view BORROWS `bytes`; the
/// underlying mapping must outlive it.
class ImageView {
 public:
  /// Throws std::runtime_error naming the first validation failure.
  [[nodiscard]] static ImageView open(std::string_view bytes);

  [[nodiscard]] const ImageMeta& meta() const { return meta_; }

  /// IdAssignment::id(v) of dense vertex v.
  [[nodiscard]] std::uint64_t vertexIdOf(std::uint64_t v) const {
    return loadU64(ids_ + v * 8);
  }
  /// Incident-arc CSR offset of vertex v (rowPtr[v]).
  [[nodiscard]] std::uint64_t rowPtr(std::uint64_t v) const {
    return loadU64(rowPtr_ + v * 8);
  }
  /// Edge id of arc `slot` (slot in [rowPtr(v), rowPtr(v+1)) for vertex v).
  [[nodiscard]] std::uint32_t arcEdge(std::uint64_t slot) const {
    std::uint32_t e;
    std::memcpy(&e, arcs_ + slot * 4, 4);
    return e;
  }
  /// Label bytes of edge e, aliasing the blob.
  [[nodiscard]] std::string_view label(std::uint64_t e) const {
    const std::uint64_t lo = loadU64(labelOff_ + e * 8);
    const std::uint64_t hi = loadU64(labelOff_ + (e + 1) * 8);
    return {labelBytes_ + lo, static_cast<std::size_t>(hi - lo)};
  }
  /// All m label views in edge order — the LabelStore view constructor's
  /// input.  The views alias the mapping for the store's whole lifetime.
  [[nodiscard]] std::vector<std::string_view> labelViews() const;

 private:
  static std::uint64_t loadU64(const char* p) {
    std::uint64_t x;
    std::memcpy(&x, p, 8);
    return x;
  }

  ImageMeta meta_;
  const char* ids_ = nullptr;
  const char* rowPtr_ = nullptr;
  const char* arcs_ = nullptr;
  const char* labelOff_ = nullptr;
  const char* labelBytes_ = nullptr;
};

}  // namespace lanecert::dist
