#pragma once
// src/dist — single-machine multi-process verification.
//
// The scheme's verifier is strictly LOCAL (a vertex's verdict is a pure
// function of its own identifier and the multiset of labels on its incident
// edges), so verdicts compose across disjoint partitions with no shared
// state beyond the label bytes themselves.  DistVerifier exploits exactly
// that: it partitions the vertex range by the SAME deterministic shard
// order every in-process sweep uses (ParallelExecutor::shardRange(n, K, k)
// is partition k of K), forks K owner processes over one anonymous shared
// mapping, runs per-process sweeps through the unmodified
// CoreVerifierEngine, and assembles the shared verdict plane in ascending
// vertex order — so the SimulationResult is BYTE-IDENTICAL to the
// single-process VerifySession at every (K, threadsPerWorker) point.
// That equivalence is the subsystem's contract, asserted by
// tests/test_dist.cpp across K ∈ {1,2,4} × t ∈ {1,2,4} with edit batches
// that deliberately straddle partition boundaries.
//
// Memory layout (one mmap(MAP_SHARED | MAP_ANONYMOUS) built before fork):
//
//   [ image: header + sections (dist/image.hpp, snapshot-style framing) ]
//   [ pad to 64 bytes ]
//   [ verdict plane: n bytes, 1 = accept, worker k writes only its slice ]
//
// The image is written once and never mutated; label EDITS never write
// through it (LabelStore repoints edited labels into process-local epoch
// storage), so a re-forked worker always recovers from pristine bytes plus
// the coordinator's edit journal.  The verdict plane is excluded from the
// image CRC because workers write it concurrently — each byte has exactly
// one writer, so the merged plane is well-defined without synchronization.
//
// Incremental re-verification composes through the same machinery as
// VerifySession: the coordinator keeps its own full LabelStore + Graph, so
// applyEdits yields the exact dirty vertex set and exact bit stats; each
// edit batch routes ONLY to the partitions owning a dirty endpoint
// (skipped workers are never woken — the stats prove it), and each owner
// refreshes + rechecks just its dirty rows.
//
// Worker death (crash, OOM-kill, SIGKILL drill): detected as EOF/HUP on the
// control socket — mid-sweep, mid-frame, or between ops.  Recovery re-forks
// the partition from the shared image, replays the journal (latest bytes
// per edited edge — absolute rewrites, so replay order is irrelevant), and
// resweeps the whole partition, which subsumes whatever command was in
// flight.  Restarts are budgeted (DistOptions::maxWorkerRestarts); an
// exhausted budget throws WorkerFailure, which the serve layer maps onto
// its PR 7 failure taxonomy as a TransientError (serve/service.cpp
// runDistVerify) for bounded job-level retry.
//
// Fork discipline: fork() without exec from a possibly-threaded parent
// (the serving pool).  Only the calling thread exists in the child; glibc's
// malloc pthread_atfork handlers make heap allocation safe there, and the
// child touches only freshly built state plus the shared mapping before
// _exit — it never returns into the parent's stack or runs its atexit
// handlers.

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/verifier.hpp"
#include "graph/graph.hpp"
#include "pls/scheme.hpp"
#include "runtime/label_store.hpp"

namespace lanecert::dist {

struct DistOptions {
  /// Partition count K (owner processes).  Clamped to >= 1.
  int workers = 4;
  /// Threads of each worker's private executor (<= 0 = hardware).
  int threadsPerWorker = 1;
  /// Worker re-forks tolerated over the verifier's lifetime before an
  /// operation throws WorkerFailure.
  int maxWorkerRestarts = 2;
  /// Test seam: partition that SIGKILLs itself mid-sweep (first spawn
  /// only — the re-forked replacement survives).  -1 = off.
  int dieWorker = -1;
  /// ...after this many vertex checks of its sweep.
  long long dieAfterVertices = 0;
};

/// Monotonic counters (snapshot via stats()).
struct DistStats {
  std::uint64_t sweeps = 0;            ///< full verdict-plane sweeps
  std::uint64_t reverifies = 0;        ///< targeted dirty-row rounds
  std::uint64_t workerDeaths = 0;      ///< EOF/HUP detections
  std::uint64_t workerRestarts = 0;    ///< successful re-fork + replay
  std::uint64_t routedBatches = 0;     ///< per-worker reverify commands sent
  std::uint64_t skippedWorkers = 0;    ///< workers a reverify never woke
};

/// A worker partition died and the restart budget is exhausted.  Retryable
/// at the job level: the verdict plane holds no partial truth a retry could
/// double-apply (every retry re-forks from the pristine image + journal).
class WorkerFailure : public std::runtime_error {
 public:
  explicit WorkerFailure(const std::string& what)
      : std::runtime_error(what) {}
};

class DistVerifier {
 public:
  /// Builds the shared image (labels are READ once into the mapping, never
  /// retained), forks the workers, and validates the configuration.
  /// Throws std::invalid_argument for an unresolvable property name or a
  /// label/edge count mismatch; std::runtime_error when the OS denies the
  /// mapping, socketpairs, or forks.
  DistVerifier(Graph g, IdAssignment ids,
               const std::vector<std::string>& labels, std::string property,
               CoreVerifierParams params = {}, DistOptions options = {});
  ~DistVerifier();

  DistVerifier(const DistVerifier&) = delete;
  DistVerifier& operator=(const DistVerifier&) = delete;

  /// Full distributed sweep; byte-identical to VerifySession::verifyAll
  /// over the same content at every (K, threads) point.
  SimulationResult verifyAll();

  /// Applies the batch (coordinator store + owning workers), re-checks the
  /// dirty rows, and returns the whole-graph result — byte-identical to
  /// VerifySession::reverifyEdits.  Before the first sweep this stages the
  /// edits and falls back to a full sweep, mirroring the session.  Throws
  /// std::out_of_range for an out-of-range edge id (nothing applied).
  SimulationResult reverifyEdits(std::span<const EdgeLabelEdit> edits);

  /// True once a full sweep completed.
  [[nodiscard]] bool swept() const { return swept_; }
  /// Coordinator store version: 0 until the first edit batch.
  [[nodiscard]] std::uint64_t storeVersion() const {
    return store_.version();
  }
  [[nodiscard]] int workers() const {
    return static_cast<int>(workers_.size());
  }
  /// Live pid of partition k (the SIGKILL drills aim here).
  [[nodiscard]] pid_t workerPid(int k) const {
    return workers_[static_cast<std::size_t>(k)].pid;
  }
  /// Owned vertex range of partition k — shardRange(n, K, k).
  [[nodiscard]] std::pair<std::size_t, std::size_t> partitionRange(
      int k) const;
  [[nodiscard]] const DistStats& stats() const { return stats_; }

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;  ///< coordinator end of the control socketpair
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void spawn(int k, bool firstSpawn);
  /// Death path: reap, budget-check, re-fork, send the journal replay.
  /// Returns the replay's seq (the command now pending on the new worker).
  std::uint64_t recover(int k);
  /// Sends `payload` to each worker in `targets` and blocks until every
  /// one replied ok — absorbing deaths via recover() along the way.
  void roundTrip(const std::vector<std::pair<int, std::string>>& sends);
  [[nodiscard]] SimulationResult assemble() const;
  void shutdownWorkers();

  Graph g_;
  IdAssignment ids_;
  std::string property_;
  CoreVerifierParams params_;
  DistOptions options_;

  char* map_ = nullptr;  ///< the shared mapping (image + verdict plane)
  std::size_t mapBytes_ = 0;
  std::size_t imageBytes_ = 0;
  std::uint8_t* verdicts_ = nullptr;  ///< n bytes inside the mapping

  /// Full-graph store over views INTO the image blob: the coordinator's
  /// authoritative mirror.  applyEdits here yields the exact dirty sets
  /// and the exact bit stats the assembled result reports — the same
  /// store/edit machinery VerifySession runs, hence byte-identity.
  LabelStore store_;
  /// Latest bytes per ever-edited edge — what a re-forked worker replays on
  /// top of the pristine image.  Absolute rewrites: order-free, bounded by
  /// the edge count however long the edit stream runs.
  std::unordered_map<EdgeId, std::string> journal_;

  std::vector<Worker> workers_;
  std::uint64_t seq_ = 0;
  int restartsUsed_ = 0;
  bool swept_ = false;
  DistStats stats_;
};

}  // namespace lanecert::dist
