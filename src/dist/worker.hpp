#pragma once
// Worker side of multi-process verification (subsystem overview in
// dist_verifier.hpp).  A worker is a forked child that owns ONE partition
// of the vertex range — partition k of K is exactly
// ParallelExecutor::shardRange(n, K, k), the same deterministic contiguous
// split every sweep in the codebase uses — and serves commands over a
// socketpair until told to exit or the coordinator's end closes.
//
// Startup (and every re-fork after a crash) rebuilds all state from the
// validated shared image: a LabelStore over zero-copy views into the blob,
// sorted label rows for the OWNED vertices only, the CoreVerifierEngine
// resolved from the property's registry name, and a private
// ParallelExecutor of `threadsPerWorker` threads.  Verdicts are written
// into the worker's disjoint slice of the shared verdict plane; since the
// per-vertex verdict is a pure function of (vertex id, sorted multiset of
// incident label bytes), the merged plane is byte-identical to a
// single-process sweep for every (K, threads) combination.
//
// Control protocol: frames of [u32 LE length | payload], payload a varint
// stream (pls codec).  Commands carry (cmd, seq, ...); every reply echoes
// (seq, status, message).  The coordinator never pipelines commands to one
// worker — a worker is always parked in recv when a frame is sent, so
// frame writes cannot deadlock against a busy peer.
//
//   kSweep    {}                       full sweep of the owned partition
//   kReverify {edits, dirty, recheck}  applyEditsBlind + refresh the OWNED
//                                      dirty rows; recheck them when asked
//                                      (recheck=false = pre-first-sweep
//                                      edit staging)
//   kReplay   {edits}                  recovery: apply the coordinator's
//                                      whole journal, rebuild every owned
//                                      row, full partition sweep
//   kExit     {}                       reply, then _exit(0)
//
// Fork discipline: the child never returns into the coordinator's stack —
// every path ends in _exit, so coordinator-side atexit handlers and stream
// flushes run exactly once, in the parent.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lanecert::dist {

enum class WorkerCmd : std::uint64_t {
  kSweep = 1,
  kReverify = 2,
  kReplay = 3,
  kExit = 4,
};

enum class WorkerStatus : std::uint64_t { kOk = 0, kError = 1 };

/// Everything a forked child needs; plain pointers because the mapping and
/// fds are inherited, not transported.
struct WorkerConfig {
  const char* imageBase = nullptr;
  std::size_t imageBytes = 0;
  /// The WHOLE shared verdict plane (n bytes); the worker writes only its
  /// partition's slice.
  std::uint8_t* verdicts = nullptr;
  std::uint32_t partition = 0;  ///< k in [0, K)
  int controlFd = -1;
  /// Test seam for the worker-death drills: raise(SIGKILL) after this many
  /// vertex checks of the next sweep (< 0 = never).  The coordinator sets
  /// it on the FIRST spawn only, so the re-forked replacement survives.
  long long dieAfterVertices = -1;
};

/// Child-process entry point after fork; never returns.
[[noreturn]] void runWorker(const WorkerConfig& cfg);

/// Writes one [u32 LE length | payload] frame, looping over partial sends
/// with SIGPIPE suppressed; false when the peer is gone (EPIPE/reset) —
/// the coordinator's death signal on the send path.
bool sendFrame(int fd, std::string_view payload);

/// Reads one frame; nullopt on EOF (clean close or mid-frame — a killed
/// peer can vanish anywhere, so both mean "peer is gone").
std::optional<std::string> recvFrame(int fd);

}  // namespace lanecert::dist
