#include "dist/worker.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/verifier.hpp"
#include "dist/image.hpp"
#include "mso/properties.hpp"
#include "pls/codec.hpp"
#include "runtime/executor.hpp"
#include "runtime/label_store.hpp"

namespace lanecert::dist {

bool sendFrame(int fd, std::string_view payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  char header[4];
  std::memcpy(header, &len, 4);
  struct Piece {
    const char* data;
    std::size_t size;
  };
  for (const Piece piece : {Piece{header, 4}, Piece{payload.data(),
                                                    payload.size()}}) {
    std::size_t sent = 0;
    while (sent < piece.size) {
      const ssize_t r = ::send(fd, piece.data + sent, piece.size - sent,
                               MSG_NOSIGNAL);
      if (r < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<std::size_t>(r);
    }
  }
  return true;
}

std::optional<std::string> recvFrame(int fd) {
  auto readAll = [fd](char* dst, std::size_t size) -> bool {
    std::size_t got = 0;
    while (got < size) {
      const ssize_t r = ::recv(fd, dst + got, size - got, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (r == 0) return false;  // EOF — peer gone (clean or killed)
      got += static_cast<std::size_t>(r);
    }
    return true;
  };
  char header[4];
  if (!readAll(header, 4)) return std::nullopt;
  std::uint32_t len;
  std::memcpy(&len, header, 4);
  std::string payload(len, '\0');
  if (len > 0 && !readAll(payload.data(), len)) return std::nullopt;
  return payload;
}

namespace {

/// The per-process verification state a worker rebuilds from the image on
/// every spawn.
struct WorkerState {
  ImageView img;
  LabelStore store;
  std::size_t begin = 0;  ///< owned vertex range [begin, end)
  std::size_t end = 0;
  /// Local CSR rows for OWNED vertices only: rowPtr[i] indexes `rows` for
  /// owned vertex begin + i; each row is the sorted incident label views —
  /// the same structure VertexLabelIndex holds for the whole graph.
  std::vector<std::size_t> rowPtr;
  std::vector<std::string_view> rows;
  std::unique_ptr<CoreVerifierEngine> engine;
  std::unique_ptr<ParallelExecutor> exec;
  std::vector<CoreVerifierEngine::ThreadState> states;
  std::uint8_t* verdicts = nullptr;
  /// Death seam: countdown of vertex checks before raise(SIGKILL); -1 off.
  std::atomic<long long> dieAfter{-1};
};

void fillRow(WorkerState& ws, std::size_t v) {
  const std::size_t i = v - ws.begin;
  const std::uint64_t arcBegin = ws.img.rowPtr(v);
  const std::uint64_t arcEnd = ws.img.rowPtr(v + 1);
  std::size_t at = ws.rowPtr[i];
  for (std::uint64_t s = arcBegin; s < arcEnd; ++s) {
    ws.rows[at++] = ws.store.view(ws.img.arcEdge(s));
  }
  std::sort(ws.rows.begin() + static_cast<std::ptrdiff_t>(ws.rowPtr[i]),
            ws.rows.begin() + static_cast<std::ptrdiff_t>(at));
}

void buildAllRows(WorkerState& ws) {
  const std::size_t owned = ws.end - ws.begin;
  ws.rowPtr.assign(owned + 1, 0);
  for (std::size_t i = 0; i < owned; ++i) {
    ws.rowPtr[i + 1] = ws.rowPtr[i] +
                       static_cast<std::size_t>(ws.img.rowPtr(ws.begin + i + 1) -
                                                ws.img.rowPtr(ws.begin + i));
  }
  ws.rows.assign(ws.rowPtr[owned], {});
  ws.exec->forShards(owned, [&](std::size_t, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) fillRow(ws, ws.begin + i);
  });
}

void checkVertex(WorkerState& ws, std::size_t v,
                 CoreVerifierEngine::ThreadState& state) {
  const std::size_t i = v - ws.begin;
  EdgeView view;
  view.selfId = ws.img.vertexIdOf(v);
  view.incidentLabels = {ws.rows.data() + ws.rowPtr[i],
                         ws.rowPtr[i + 1] - ws.rowPtr[i]};
  ws.verdicts[v] = ws.engine->check(view, state) ? 1 : 0;
  if (ws.dieAfter.load(std::memory_order_relaxed) >= 0 &&
      ws.dieAfter.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    raise(SIGKILL);  // the drill: vanish mid-sweep with no cleanup at all
  }
}

void sweepOwned(WorkerState& ws) {
  const std::size_t owned = ws.end - ws.begin;
  ws.exec->forShards(owned, [&](std::size_t shard, std::size_t b,
                                std::size_t e) {
    CoreVerifierEngine::ThreadState& state = ws.states[shard];
    for (std::size_t i = b; i < e; ++i) checkVertex(ws, ws.begin + i, state);
  });
}

[[nodiscard]] std::vector<EdgeLabelEdit> decodeEdits(Decoder& dec,
                                                     std::uint64_t numEdges) {
  const std::uint64_t count = dec.u64();
  if (count > dec.remaining()) throw DecodeError{};  // ≥ 1 byte per edit
  std::vector<EdgeLabelEdit> edits;
  edits.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    EdgeLabelEdit edit;
    const std::uint64_t e = dec.u64();
    if (e >= numEdges) throw DecodeError{};
    edit.edge = static_cast<EdgeId>(e);
    edit.bytes = dec.bytes();
    edits.push_back(std::move(edit));
  }
  return edits;
}

}  // namespace

void runWorker(const WorkerConfig& cfg) {
  auto reply = [&cfg](std::uint64_t seq, WorkerStatus status,
                      std::string_view message = {}) {
    Encoder enc;
    enc.u64(seq);
    enc.u64(static_cast<std::uint64_t>(status));
    enc.bytes(message);
    if (!sendFrame(cfg.controlFd, enc.str())) _exit(0);  // coordinator gone
  };
  try {
    WorkerState ws;
    ws.img = ImageView::open({cfg.imageBase, cfg.imageBytes});
    const ImageMeta& meta = ws.img.meta();
    const PropertyPtr prop = propertyByName(meta.property);
    if (!prop) {
      throw std::runtime_error("dist worker: unknown property '" +
                               meta.property + "'");
    }
    ws.store = LabelStore(ws.img.labelViews());
    const auto [begin, end] = ParallelExecutor::shardRange(
        static_cast<std::size_t>(meta.numVertices), meta.workers,
        cfg.partition);
    ws.begin = begin;
    ws.end = end;
    ws.engine = std::make_unique<CoreVerifierEngine>(prop, meta.params);
    ws.exec = std::make_unique<ParallelExecutor>(
        static_cast<int>(meta.threadsPerWorker));
    ws.states.resize(static_cast<std::size_t>(ws.exec->numThreads()));
    ws.verdicts = cfg.verdicts;
    buildAllRows(ws);

    while (true) {
      const std::optional<std::string> frame = recvFrame(cfg.controlFd);
      if (!frame) _exit(0);  // coordinator closed or died: nothing to serve
      std::uint64_t seq = 0;
      try {
        Decoder dec{std::string_view(*frame)};
        const auto cmd = static_cast<WorkerCmd>(dec.u64());
        seq = dec.u64();
        switch (cmd) {
          case WorkerCmd::kSweep: {
            ws.dieAfter.store(cfg.dieAfterVertices,
                              std::memory_order_relaxed);
            sweepOwned(ws);
            break;
          }
          case WorkerCmd::kReverify: {
            std::vector<EdgeLabelEdit> edits =
                decodeEdits(dec, meta.numEdges);
            const std::uint64_t dirtyCount = dec.u64();
            if (dirtyCount > dec.remaining()) throw DecodeError{};
            std::vector<std::size_t> dirty;
            dirty.reserve(static_cast<std::size_t>(dirtyCount));
            for (std::uint64_t i = 0; i < dirtyCount; ++i) {
              const std::uint64_t v = dec.u64();
              if (v < ws.begin || v >= ws.end) throw DecodeError{};
              dirty.push_back(static_cast<std::size_t>(v));
            }
            const bool recheck = dec.boolean();
            ws.store.applyEditsBlind(edits);
            for (const std::size_t v : dirty) fillRow(ws, v);
            if (recheck) {
              ws.exec->forShards(
                  dirty.size(),
                  [&](std::size_t shard, std::size_t b, std::size_t e) {
                    CoreVerifierEngine::ThreadState& state = ws.states[shard];
                    for (std::size_t i = b; i < e; ++i) {
                      checkVertex(ws, dirty[i], state);
                    }
                  });
            }
            break;
          }
          case WorkerCmd::kReplay: {
            std::vector<EdgeLabelEdit> edits =
                decodeEdits(dec, meta.numEdges);
            ws.store.applyEditsBlind(edits);
            // A replacement cannot know which rows its predecessor had
            // refreshed or which verdict bytes it had written before dying,
            // so recovery is whole-partition: every owned row rebuilt from
            // the post-journal store, every owned verdict rewritten.
            buildAllRows(ws);
            sweepOwned(ws);
            break;
          }
          case WorkerCmd::kExit: {
            reply(seq, WorkerStatus::kOk);
            _exit(0);
          }
          default:
            throw std::runtime_error("dist worker: unknown command");
        }
        reply(seq, WorkerStatus::kOk);
      } catch (const std::exception& e) {
        reply(seq, WorkerStatus::kError, e.what());
      }
    }
  } catch (const std::exception& e) {
    // Startup failure (image validation, property resolution): report once
    // with seq 0 — the coordinator treats any startup-error frame as fatal.
    Encoder enc;
    enc.u64(0);
    enc.u64(static_cast<std::uint64_t>(WorkerStatus::kError));
    enc.bytes(e.what());
    sendFrame(cfg.controlFd, enc.str());
    _exit(1);
  }
}

}  // namespace lanecert::dist
