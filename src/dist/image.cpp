#include "dist/image.hpp"

#include <limits>
#include <stdexcept>

#include "pls/codec.hpp"
#include "snapshot/format.hpp"

namespace lanecert::dist {

namespace {

constexpr std::size_t kTableEnd =
    kImageHeaderBytes + kImageSectionCount * kImageSectionEntryBytes;

[[nodiscard]] std::size_t alignUp8(std::size_t x) { return (x + 7) & ~std::size_t{7}; }

void storeU32(char* p, std::uint32_t x) { std::memcpy(p, &x, 4); }
void storeU64(char* p, std::uint64_t x) { std::memcpy(p, &x, 8); }

[[nodiscard]] std::uint32_t loadU32(const char* p) {
  std::uint32_t x;
  std::memcpy(&x, p, 4);
  return x;
}
[[nodiscard]] std::uint64_t loadU64(const char* p) {
  std::uint64_t x;
  std::memcpy(&x, p, 8);
  return x;
}

[[nodiscard]] std::string encodeMeta(const ImageMeta& meta) {
  Encoder enc;
  enc.u64(meta.numVertices);
  enc.u64(meta.numEdges);
  enc.u64(meta.workers);
  enc.u64(meta.threadsPerWorker);
  enc.u64(static_cast<std::uint64_t>(meta.params.maxLanes));
  enc.u64(static_cast<std::uint64_t>(meta.params.maxThrough));
  enc.boolean(meta.params.readMemo);
  enc.bytes(meta.property);
  return enc.take();
}

struct Layout {
  std::size_t lengths[kImageSectionCount];  ///< payload bytes, in id order
  std::size_t offsets[kImageSectionCount];
  std::size_t total;
};

[[nodiscard]] Layout computeLayout(const Graph& g,
                                   const std::vector<std::string>& labels,
                                   const std::string& metaBytes) {
  const auto n = static_cast<std::size_t>(g.numVertices());
  const auto m = static_cast<std::size_t>(g.numEdges());
  std::size_t blob = 0;
  for (const std::string& l : labels) blob += l.size();
  Layout lay{};
  lay.lengths[0] = metaBytes.size();  // kMeta
  lay.lengths[1] = 8 * n;             // kIds
  lay.lengths[2] = 8 * (n + 1);       // kRowPtr
  lay.lengths[3] = 4 * 2 * m;         // kArcs
  lay.lengths[4] = 8 * (m + 1);       // kLabelOffsets
  lay.lengths[5] = blob;              // kLabelBytes
  std::size_t at = kTableEnd;
  for (std::size_t s = 0; s < kImageSectionCount; ++s) {
    at = alignUp8(at);
    lay.offsets[s] = at;
    at += lay.lengths[s];
  }
  lay.total = at;
  return lay;
}

}  // namespace

std::size_t imageSizeBytes(const Graph& g,
                           const std::vector<std::string>& labels,
                           const ImageMeta& meta) {
  return computeLayout(g, labels, encodeMeta(meta)).total;
}

void writeImage(char* dst, std::size_t size, const Graph& g,
                const IdAssignment& ids,
                const std::vector<std::string>& labels, const ImageMeta& meta) {
  const auto n = static_cast<std::size_t>(g.numVertices());
  const auto m = static_cast<std::size_t>(g.numEdges());
  if (meta.numVertices != n || meta.numEdges != m || labels.size() != m ||
      static_cast<std::size_t>(ids.numVertices()) != n) {
    throw std::invalid_argument("dist image: meta/graph/labels disagree");
  }
  const std::string metaBytes = encodeMeta(meta);
  const Layout lay = computeLayout(g, labels, metaBytes);
  if (size != lay.total) {
    throw std::invalid_argument("dist image: destination size mismatch");
  }
  // Zero the frame region so alignment pad bytes are deterministic (the
  // content hash covers payloads only, but deterministic images are easier
  // to debug and to byte-compare in tests).
  std::memset(dst, 0, kTableEnd);

  // Payloads first, hashes over them, then header + table.
  std::memcpy(dst + lay.offsets[0], metaBytes.data(), metaBytes.size());
  for (std::size_t v = 0; v < n; ++v) {
    storeU64(dst + lay.offsets[1] + 8 * v, ids.id(static_cast<VertexId>(v)));
  }
  std::uint64_t arcAt = 0;
  for (std::size_t v = 0; v <= n; ++v) {
    storeU64(dst + lay.offsets[2] + 8 * v, arcAt);
    if (v < n) arcAt += static_cast<std::uint64_t>(
        g.degree(static_cast<VertexId>(v)));
  }
  std::size_t slot = 0;
  for (std::size_t v = 0; v < n; ++v) {
    for (const Arc& a : g.arcs(static_cast<VertexId>(v))) {
      storeU32(dst + lay.offsets[3] + 4 * slot,
               static_cast<std::uint32_t>(a.edge));
      ++slot;
    }
  }
  std::uint64_t off = 0;
  for (std::size_t e = 0; e <= m; ++e) {
    storeU64(dst + lay.offsets[4] + 8 * e, off);
    if (e < m) {
      std::memcpy(dst + lay.offsets[5] + off, labels[e].data(),
                  labels[e].size());
      off += labels[e].size();
    }
  }

  std::uint64_t contentHash = 0xcbf29ce484222325ull;
  for (std::size_t s = 0; s < kImageSectionCount; ++s) {
    contentHash = snapshot::fnv1a64(
        std::string_view(dst + lay.offsets[s], lay.lengths[s]), contentHash);
  }
  const std::uint64_t paramsFp = snapshot::fnv1a64(metaBytes);

  std::memcpy(dst, kImageMagic.data(), kImageMagic.size());
  storeU32(dst + 8, kImageFormatVersion);
  storeU32(dst + 12, static_cast<std::uint32_t>(kImageSectionCount));
  storeU64(dst + 16, contentHash);
  storeU64(dst + 24, paramsFp);
  for (std::size_t s = 0; s < kImageSectionCount; ++s) {
    char* entry = dst + kImageHeaderBytes + s * kImageSectionEntryBytes;
    storeU32(entry, static_cast<std::uint32_t>(s + 1));
    storeU32(entry + 4, snapshot::crc32(std::string_view(
                            dst + lay.offsets[s], lay.lengths[s])));
    storeU64(entry + 8, lay.offsets[s]);
    storeU64(entry + 16, lay.lengths[s]);
  }
}

ImageView ImageView::open(std::string_view bytes) {
  auto fail = [](const char* what) -> ImageView {
    throw std::runtime_error(std::string("dist image: ") + what);
  };
  if (bytes.size() < kTableEnd) return fail("truncated frame");
  if (bytes.substr(0, 8) != kImageMagic) return fail("bad magic");
  if (loadU32(bytes.data() + 8) != kImageFormatVersion) {
    return fail("unsupported format version");
  }
  if (loadU32(bytes.data() + 12) != kImageSectionCount) {
    return fail("bad section count");
  }

  std::size_t offsets[kImageSectionCount];
  std::size_t lengths[kImageSectionCount];
  std::size_t expect = kTableEnd;
  for (std::size_t s = 0; s < kImageSectionCount; ++s) {
    const char* entry =
        bytes.data() + kImageHeaderBytes + s * kImageSectionEntryBytes;
    if (loadU32(entry) != s + 1) return fail("section id out of order");
    const std::uint64_t off = loadU64(entry + 8);
    const std::uint64_t len = loadU64(entry + 16);
    expect = alignUp8(expect);
    if (off != expect) return fail("section offset not contiguous");
    if (len > bytes.size() || off > bytes.size() - len) {
      return fail("section out of bounds");
    }
    offsets[s] = static_cast<std::size_t>(off);
    lengths[s] = static_cast<std::size_t>(len);
    expect = offsets[s] + lengths[s];
  }
  if (expect != bytes.size()) return fail("trailing bytes after sections");
  std::uint64_t contentHash = 0xcbf29ce484222325ull;
  for (std::size_t s = 0; s < kImageSectionCount; ++s) {
    const std::string_view payload = bytes.substr(offsets[s], lengths[s]);
    const char* entry =
        bytes.data() + kImageHeaderBytes + s * kImageSectionEntryBytes;
    if (snapshot::crc32(payload) != loadU32(entry + 4)) {
      return fail("section CRC mismatch");
    }
    contentHash = snapshot::fnv1a64(payload, contentHash);
  }
  if (contentHash != loadU64(bytes.data() + 16)) {
    return fail("content hash mismatch");
  }
  const std::string_view metaBytes = bytes.substr(offsets[0], lengths[0]);
  if (snapshot::fnv1a64(metaBytes) != loadU64(bytes.data() + 24)) {
    return fail("params fingerprint mismatch");
  }

  ImageView view;
  try {
    Decoder dec(metaBytes);
    view.meta_.numVertices = dec.u64();
    view.meta_.numEdges = dec.u64();
    view.meta_.workers = static_cast<std::uint32_t>(dec.u64());
    view.meta_.threadsPerWorker = static_cast<std::uint32_t>(dec.u64());
    view.meta_.params.maxLanes = static_cast<int>(dec.u64());
    view.meta_.params.maxThrough = static_cast<int>(dec.u64());
    view.meta_.params.readMemo = dec.boolean();
    view.meta_.property = dec.bytes();
    if (!dec.atEnd()) return fail("meta trailing bytes");
  } catch (const DecodeError&) {
    return fail("meta decode error");
  }
  const std::uint64_t n = view.meta_.numVertices;
  const std::uint64_t m = view.meta_.numEdges;
  // Counts must fit the dense id types AND pay for their arrays: a hostile
  // meta cannot claim sizes the validated section lengths don't back.
  if (n > static_cast<std::uint64_t>(std::numeric_limits<VertexId>::max()) ||
      m > static_cast<std::uint64_t>(std::numeric_limits<EdgeId>::max())) {
    return fail("counts out of range");
  }
  if (lengths[1] != 8 * n || lengths[2] != 8 * (n + 1) ||
      lengths[3] != 4 * 2 * m || lengths[4] != 8 * (m + 1)) {
    return fail("section length disagrees with meta counts");
  }
  view.ids_ = bytes.data() + offsets[1];
  view.rowPtr_ = bytes.data() + offsets[2];
  view.arcs_ = bytes.data() + offsets[3];
  view.labelOff_ = bytes.data() + offsets[4];
  view.labelBytes_ = bytes.data() + offsets[5];
  std::uint64_t prev = 0;
  for (std::uint64_t v = 0; v <= n; ++v) {
    const std::uint64_t p = view.rowPtr(v);
    if (p < prev) return fail("rowPtr not monotone");
    prev = p;
  }
  if (prev != 2 * m) return fail("rowPtr does not end at 2m");
  for (std::uint64_t s = 0; s < 2 * m; ++s) {
    if (view.arcEdge(s) >= m) return fail("arc edge id out of range");
  }
  prev = 0;
  for (std::uint64_t e = 0; e <= m; ++e) {
    const std::uint64_t p = loadU64(view.labelOff_ + e * 8);
    if (p < prev) return fail("label offsets not monotone");
    prev = p;
  }
  if (prev != lengths[5]) return fail("label offsets do not cover the blob");
  return view;
}

std::vector<std::string_view> ImageView::labelViews() const {
  std::vector<std::string_view> views;
  views.reserve(static_cast<std::size_t>(meta_.numEdges));
  for (std::uint64_t e = 0; e < meta_.numEdges; ++e) {
    views.push_back(label(e));
  }
  return views;
}

}  // namespace lanecert::dist
