#include "dist/dist_verifier.hpp"

#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "dist/image.hpp"
#include "dist/worker.hpp"
#include "mso/properties.hpp"
#include "pls/codec.hpp"
#include "runtime/executor.hpp"

namespace lanecert::dist {

namespace {

[[nodiscard]] std::size_t alignUp64(std::size_t x) {
  return (x + 63) & ~std::size_t{63};
}

void encodeEdits(Encoder& enc, std::span<const EdgeLabelEdit> edits) {
  enc.u64(edits.size());
  for (const EdgeLabelEdit& e : edits) {
    enc.u64(static_cast<std::uint64_t>(e.edge));
    enc.bytes(e.bytes);
  }
}

}  // namespace

DistVerifier::DistVerifier(Graph g, IdAssignment ids,
                           const std::vector<std::string>& labels,
                           std::string property, CoreVerifierParams params,
                           DistOptions options)
    : g_(std::move(g)),
      ids_(std::move(ids)),
      property_(std::move(property)),
      params_(params),
      options_(options) {
  if (labels.size() != static_cast<std::size_t>(g_.numEdges())) {
    throw std::invalid_argument("DistVerifier: one label per edge required");
  }
  if (!propertyByName(property_)) {
    throw std::invalid_argument("DistVerifier: unknown property '" +
                                property_ + "'");
  }
  options_.workers = std::max(1, options_.workers);
  const auto n = static_cast<std::size_t>(g_.numVertices());

  ImageMeta meta;
  meta.numVertices = n;
  meta.numEdges = static_cast<std::uint64_t>(g_.numEdges());
  meta.workers = static_cast<std::uint32_t>(options_.workers);
  meta.threadsPerWorker = static_cast<std::uint32_t>(
      resolveThreadCount(options_.threadsPerWorker));
  meta.params = params_;
  meta.property = property_;

  imageBytes_ = imageSizeBytes(g_, labels, meta);
  mapBytes_ = alignUp64(imageBytes_) + n;
  void* map = ::mmap(nullptr, mapBytes_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (map == MAP_FAILED) {
    throw std::runtime_error(std::string("DistVerifier: mmap failed: ") +
                             std::strerror(errno));
  }
  map_ = static_cast<char*>(map);
  verdicts_ = reinterpret_cast<std::uint8_t*>(map_ + alignUp64(imageBytes_));
  writeImage(map_, imageBytes_, g_, ids_, labels, meta);

  // Open the image exactly as a worker will: the coordinator's own store is
  // built over the validated mapping, so a writer bug fails HERE, loudly,
  // instead of inside a child where it is harder to attribute.
  const ImageView img = ImageView::open({map_, imageBytes_});
  store_ = LabelStore(img.labelViews());

  workers_.resize(static_cast<std::size_t>(options_.workers));
  for (int k = 0; k < options_.workers; ++k) {
    const auto [begin, end] = ParallelExecutor::shardRange(
        n, static_cast<std::size_t>(options_.workers),
        static_cast<std::size_t>(k));
    workers_[static_cast<std::size_t>(k)].begin = begin;
    workers_[static_cast<std::size_t>(k)].end = end;
    spawn(k, /*firstSpawn=*/true);
  }
}

DistVerifier::~DistVerifier() {
  shutdownWorkers();
  if (map_ != nullptr) ::munmap(map_, mapBytes_);
}

std::pair<std::size_t, std::size_t> DistVerifier::partitionRange(
    int k) const {
  const Worker& w = workers_[static_cast<std::size_t>(k)];
  return {w.begin, w.end};
}

void DistVerifier::spawn(int k, bool firstSpawn) {
  Worker& w = workers_[static_cast<std::size_t>(k)];
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw std::runtime_error(std::string("DistVerifier: socketpair: ") +
                             std::strerror(errno));
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    throw std::runtime_error(std::string("DistVerifier: fork: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child: drop every coordinator-side fd (ours and the siblings') so a
    // dead coordinator reads as EOF everywhere, then become the worker.
    ::close(sv[0]);
    for (const Worker& other : workers_) {
      if (other.fd >= 0) ::close(other.fd);
    }
    WorkerConfig cfg;
    cfg.imageBase = map_;
    cfg.imageBytes = imageBytes_;
    cfg.verdicts = verdicts_;
    cfg.partition = static_cast<std::uint32_t>(k);
    cfg.controlFd = sv[1];
    cfg.dieAfterVertices = (firstSpawn && k == options_.dieWorker)
                               ? options_.dieAfterVertices
                               : -1;
    runWorker(cfg);  // never returns
  }
  ::close(sv[1]);
  w.pid = pid;
  w.fd = sv[0];
}

std::uint64_t DistVerifier::recover(int k) {
  Worker& w = workers_[static_cast<std::size_t>(k)];
  while (true) {
    if (w.fd >= 0) {
      ::close(w.fd);
      w.fd = -1;
    }
    if (w.pid > 0) {
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.pid = -1;
    }
    ++stats_.workerDeaths;
    if (restartsUsed_ >= options_.maxWorkerRestarts) {
      throw WorkerFailure("dist: worker partition " + std::to_string(k) +
                          " died and the restart budget (" +
                          std::to_string(options_.maxWorkerRestarts) +
                          ") is exhausted");
    }
    ++restartsUsed_;
    ++stats_.workerRestarts;
    spawn(k, /*firstSpawn=*/false);
    // Replay = pristine image + the journal (latest bytes per edited edge,
    // absolute rewrites) + a whole-partition sweep: subsumes whatever
    // command the dead worker was running, so the caller just waits for
    // THIS seq instead of resending the original.
    Encoder enc;
    enc.u64(static_cast<std::uint64_t>(WorkerCmd::kReplay));
    const std::uint64_t seq = ++seq_;
    enc.u64(seq);
    enc.u64(journal_.size());
    for (const auto& [edge, bytes] : journal_) {
      enc.u64(static_cast<std::uint64_t>(edge));
      enc.bytes(bytes);
    }
    if (sendFrame(w.fd, enc.str())) return seq;
    // The replacement died before reading its replay; loop (budgeted).
  }
}

void DistVerifier::roundTrip(
    const std::vector<std::pair<int, std::string>>& sends) {
  std::unordered_map<int, std::uint64_t> pending;  // worker -> expected seq
  for (const auto& [k, payload] : sends) {
    Decoder peek{std::string_view(payload)};
    (void)peek.u64();  // cmd
    const std::uint64_t seq = peek.u64();
    if (sendFrame(workers_[static_cast<std::size_t>(k)].fd, payload)) {
      pending[k] = seq;
    } else {
      pending[k] = recover(k);
    }
  }
  while (!pending.empty()) {
    std::vector<pollfd> fds;
    std::vector<int> order;
    fds.reserve(pending.size());
    for (const auto& [k, seq] : pending) {
      fds.push_back(pollfd{workers_[static_cast<std::size_t>(k)].fd, POLLIN,
                           0});
      order.push_back(k);
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("DistVerifier: poll: ") +
                               std::strerror(errno));
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const int k = order[i];
      if ((fds[i].revents & POLLIN) != 0) {
        // Data may precede the EOF of a worker that replied then died; a
        // truncated frame (killed mid-write) reads as EOF here too.
        const std::optional<std::string> frame =
            recvFrame(workers_[static_cast<std::size_t>(k)].fd);
        if (!frame) {
          pending[k] = recover(k);
          continue;
        }
        Decoder dec{std::string_view(*frame)};
        const std::uint64_t seq = dec.u64();
        const auto status = static_cast<WorkerStatus>(dec.u64());
        const std::string message{dec.bytesView()};
        if (status != WorkerStatus::kOk) {
          // Permanent: a worker that RESPONDED with an error hit a real
          // defect (bad image, unknown command), not a crash — retrying
          // the identical exchange would fail identically.
          throw std::runtime_error("dist worker " + std::to_string(k) +
                                   ": " + message);
        }
        if (seq != pending[k]) {
          throw std::runtime_error("dist: protocol error (seq mismatch)");
        }
        pending.erase(k);
      } else if ((fds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0) {
        pending[k] = recover(k);
      }
    }
  }
}

SimulationResult DistVerifier::verifyAll() {
  std::vector<std::pair<int, std::string>> sends;
  sends.reserve(workers_.size());
  Encoder enc;
  for (int k = 0; k < workers(); ++k) {
    enc.u64(static_cast<std::uint64_t>(WorkerCmd::kSweep));
    enc.u64(++seq_);
    sends.emplace_back(k, enc.take());
  }
  roundTrip(sends);
  swept_ = true;
  ++stats_.sweeps;
  return assemble();
}

SimulationResult DistVerifier::reverifyEdits(
    std::span<const EdgeLabelEdit> edits) {
  if (edits.empty() && swept_) return assemble();
  // Coordinator first: applyEdits validates the whole batch up front, so a
  // throwing batch reaches neither the journal nor any worker.
  const std::vector<VertexId> dirty = store_.applyEdits(g_, edits);
  for (const EdgeLabelEdit& e : edits) journal_[e.edge] = e.bytes;

  // Route every edit to the partitions owning an endpoint, with its owned
  // dirty rows.  Partitions are contiguous ascending ranges, so a sorted
  // dirty set maps to per-worker subranges by binary search.
  const int count = workers();
  auto ownerOf = [this, count](VertexId v) {
    int lo = 0;
    int hi = count - 1;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      if (static_cast<std::size_t>(v) <
          workers_[static_cast<std::size_t>(mid)].end) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  };
  std::vector<std::vector<EdgeLabelEdit>> editsFor(
      static_cast<std::size_t>(count));
  for (const EdgeLabelEdit& e : edits) {
    const Edge& edge = g_.edge(e.edge);
    const int a = ownerOf(edge.u);
    const int b = ownerOf(edge.v);
    editsFor[static_cast<std::size_t>(a)].push_back(e);
    if (b != a) editsFor[static_cast<std::size_t>(b)].push_back(e);
  }

  const bool recheck = swept_;
  std::vector<std::pair<int, std::string>> sends;
  Encoder enc;
  for (int k = 0; k < count; ++k) {
    const Worker& w = workers_[static_cast<std::size_t>(k)];
    if (editsFor[static_cast<std::size_t>(k)].empty()) {
      if (recheck) ++stats_.skippedWorkers;
      continue;
    }
    const auto lo = std::lower_bound(dirty.begin(), dirty.end(),
                                     static_cast<VertexId>(w.begin));
    const auto hi = std::lower_bound(lo, dirty.end(),
                                     static_cast<VertexId>(w.end));
    enc.u64(static_cast<std::uint64_t>(WorkerCmd::kReverify));
    enc.u64(++seq_);
    encodeEdits(enc, editsFor[static_cast<std::size_t>(k)]);
    enc.u64(static_cast<std::uint64_t>(hi - lo));
    for (auto it = lo; it != hi; ++it) {
      enc.u64(static_cast<std::uint64_t>(*it));
    }
    enc.boolean(recheck);
    sends.emplace_back(k, enc.take());
    if (recheck) ++stats_.routedBatches;
  }
  roundTrip(sends);
  if (!swept_) return verifyAll();  // edits staged; now the initial sweep
  ++stats_.reverifies;
  return assemble();
}

SimulationResult DistVerifier::assemble() const {
  SimulationResult r;
  r.maxLabelBits = store_.maxLabelBits();
  r.totalLabelBits = store_.totalLabelBits();
  const auto n = static_cast<std::size_t>(g_.numVertices());
  for (std::size_t vi = 0; vi < n; ++vi) {
    if (verdicts_[vi] == 0) r.rejecting.push_back(static_cast<VertexId>(vi));
  }
  r.allAccept = r.rejecting.empty();
  return r;
}

void DistVerifier::shutdownWorkers() {
  Encoder enc;
  for (Worker& w : workers_) {
    if (w.fd < 0) continue;
    enc.u64(static_cast<std::uint64_t>(WorkerCmd::kExit));
    enc.u64(++seq_);
    sendFrame(w.fd, enc.take());  // best-effort; EOF also exits the worker
    ::close(w.fd);
    w.fd = -1;
  }
  for (Worker& w : workers_) {
    if (w.pid > 0) {
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      w.pid = -1;
    }
  }
}

}  // namespace lanecert::dist
