# Empty dependencies file for bench_congestion.
# This may be replaced when dependencies are built.
