file(REMOVE_RECURSE
  "CMakeFiles/bench_congestion.dir/bench/bench_congestion.cpp.o"
  "CMakeFiles/bench_congestion.dir/bench/bench_congestion.cpp.o.d"
  "bench_congestion"
  "bench_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
