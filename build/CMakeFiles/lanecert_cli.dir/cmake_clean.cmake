file(REMOVE_RECURSE
  "CMakeFiles/lanecert_cli.dir/examples/lanecert_cli.cpp.o"
  "CMakeFiles/lanecert_cli.dir/examples/lanecert_cli.cpp.o.d"
  "lanecert_cli"
  "lanecert_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lanecert_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
