# Empty dependencies file for lanecert_cli.
# This may be replaced when dependencies are built.
