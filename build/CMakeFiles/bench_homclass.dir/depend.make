# Empty dependencies file for bench_homclass.
# This may be replaced when dependencies are built.
