file(REMOVE_RECURSE
  "CMakeFiles/bench_homclass.dir/bench/bench_homclass.cpp.o"
  "CMakeFiles/bench_homclass.dir/bench/bench_homclass.cpp.o.d"
  "bench_homclass"
  "bench_homclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_homclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
