file(REMOVE_RECURSE
  "CMakeFiles/minor_free.dir/examples/minor_free.cpp.o"
  "CMakeFiles/minor_free.dir/examples/minor_free.cpp.o.d"
  "minor_free"
  "minor_free.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minor_free.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
