# Empty dependencies file for minor_free.
# This may be replaced when dependencies are built.
