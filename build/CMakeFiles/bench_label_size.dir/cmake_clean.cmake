file(REMOVE_RECURSE
  "CMakeFiles/bench_label_size.dir/bench/bench_label_size.cpp.o"
  "CMakeFiles/bench_label_size.dir/bench/bench_label_size.cpp.o.d"
  "bench_label_size"
  "bench_label_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_label_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
