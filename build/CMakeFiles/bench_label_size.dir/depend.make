# Empty dependencies file for bench_label_size.
# This may be replaced when dependencies are built.
