# Empty dependencies file for mso_playground.
# This may be replaced when dependencies are built.
