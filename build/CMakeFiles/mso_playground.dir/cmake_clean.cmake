file(REMOVE_RECURSE
  "CMakeFiles/mso_playground.dir/examples/mso_playground.cpp.o"
  "CMakeFiles/mso_playground.dir/examples/mso_playground.cpp.o.d"
  "mso_playground"
  "mso_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mso_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
