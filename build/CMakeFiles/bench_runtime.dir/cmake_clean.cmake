file(REMOVE_RECURSE
  "CMakeFiles/bench_runtime.dir/bench/bench_runtime.cpp.o"
  "CMakeFiles/bench_runtime.dir/bench/bench_runtime.cpp.o.d"
  "bench_runtime"
  "bench_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
