# Empty dependencies file for bench_runtime.
# This may be replaced when dependencies are built.
