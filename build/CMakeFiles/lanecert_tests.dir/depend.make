# Empty dependencies file for lanecert_tests.
# This may be replaced when dependencies are built.
