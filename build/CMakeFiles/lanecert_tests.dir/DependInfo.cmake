
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_baseline.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_baseline.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_baseline.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_core.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_core.cpp.o.d"
  "/root/repo/tests/test_core_attacks.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_core_attacks.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_core_attacks.cpp.o.d"
  "/root/repo/tests/test_formula.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_formula.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_formula.cpp.o.d"
  "/root/repo/tests/test_girth.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_girth.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_girth.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_graph.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_graph.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_integration.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_integration.cpp.o.d"
  "/root/repo/tests/test_interval.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_interval.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_interval.cpp.o.d"
  "/root/repo/tests/test_klane.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_klane.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_klane.cpp.o.d"
  "/root/repo/tests/test_lane.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_lane.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_lane.cpp.o.d"
  "/root/repo/tests/test_lanewidth.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_lanewidth.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_lanewidth.cpp.o.d"
  "/root/repo/tests/test_merges.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_merges.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_merges.cpp.o.d"
  "/root/repo/tests/test_mso.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_mso.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_mso.cpp.o.d"
  "/root/repo/tests/test_pathwidth.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_pathwidth.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_pathwidth.cpp.o.d"
  "/root/repo/tests/test_pls.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_pls.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_pls.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_runtime.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_runtime.cpp.o.d"
  "/root/repo/tests/test_scheme_sweep.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_scheme_sweep.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_scheme_sweep.cpp.o.d"
  "/root/repo/tests/test_treewidth.cpp" "CMakeFiles/lanecert_tests.dir/tests/test_treewidth.cpp.o" "gcc" "CMakeFiles/lanecert_tests.dir/tests/test_treewidth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/lanecert.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
