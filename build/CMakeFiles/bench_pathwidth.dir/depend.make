# Empty dependencies file for bench_pathwidth.
# This may be replaced when dependencies are built.
