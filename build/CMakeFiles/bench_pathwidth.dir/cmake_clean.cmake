file(REMOVE_RECURSE
  "CMakeFiles/bench_pathwidth.dir/bench/bench_pathwidth.cpp.o"
  "CMakeFiles/bench_pathwidth.dir/bench/bench_pathwidth.cpp.o.d"
  "bench_pathwidth"
  "bench_pathwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pathwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
