
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/fmrt.cpp" "CMakeFiles/lanecert.dir/src/baseline/fmrt.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/baseline/fmrt.cpp.o.d"
  "/root/repo/src/core/algebra.cpp" "CMakeFiles/lanecert.dir/src/core/algebra.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/core/algebra.cpp.o.d"
  "/root/repo/src/core/prover.cpp" "CMakeFiles/lanecert.dir/src/core/prover.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/core/prover.cpp.o.d"
  "/root/repo/src/core/records.cpp" "CMakeFiles/lanecert.dir/src/core/records.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/core/records.cpp.o.d"
  "/root/repo/src/core/scheme.cpp" "CMakeFiles/lanecert.dir/src/core/scheme.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/core/scheme.cpp.o.d"
  "/root/repo/src/core/verifier.cpp" "CMakeFiles/lanecert.dir/src/core/verifier.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/core/verifier.cpp.o.d"
  "/root/repo/src/graph/algorithms.cpp" "CMakeFiles/lanecert.dir/src/graph/algorithms.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/graph/algorithms.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "CMakeFiles/lanecert.dir/src/graph/generators.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "CMakeFiles/lanecert.dir/src/graph/graph.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "CMakeFiles/lanecert.dir/src/graph/io.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/graph/io.cpp.o.d"
  "/root/repo/src/interval/interval.cpp" "CMakeFiles/lanecert.dir/src/interval/interval.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/interval/interval.cpp.o.d"
  "/root/repo/src/klane/hierarchy.cpp" "CMakeFiles/lanecert.dir/src/klane/hierarchy.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/klane/hierarchy.cpp.o.d"
  "/root/repo/src/klane/merges.cpp" "CMakeFiles/lanecert.dir/src/klane/merges.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/klane/merges.cpp.o.d"
  "/root/repo/src/klane/validate.cpp" "CMakeFiles/lanecert.dir/src/klane/validate.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/klane/validate.cpp.o.d"
  "/root/repo/src/lane/bounds.cpp" "CMakeFiles/lanecert.dir/src/lane/bounds.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/lane/bounds.cpp.o.d"
  "/root/repo/src/lane/embedding.cpp" "CMakeFiles/lanecert.dir/src/lane/embedding.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/lane/embedding.cpp.o.d"
  "/root/repo/src/lane/lane_partition.cpp" "CMakeFiles/lanecert.dir/src/lane/lane_partition.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/lane/lane_partition.cpp.o.d"
  "/root/repo/src/lanewidth/lanewidth.cpp" "CMakeFiles/lanecert.dir/src/lanewidth/lanewidth.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/lanewidth/lanewidth.cpp.o.d"
  "/root/repo/src/mso/bruteforce.cpp" "CMakeFiles/lanecert.dir/src/mso/bruteforce.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/mso/bruteforce.cpp.o.d"
  "/root/repo/src/mso/colorability.cpp" "CMakeFiles/lanecert.dir/src/mso/colorability.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/mso/colorability.cpp.o.d"
  "/root/repo/src/mso/counting.cpp" "CMakeFiles/lanecert.dir/src/mso/counting.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/mso/counting.cpp.o.d"
  "/root/repo/src/mso/domination.cpp" "CMakeFiles/lanecert.dir/src/mso/domination.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/mso/domination.cpp.o.d"
  "/root/repo/src/mso/formula.cpp" "CMakeFiles/lanecert.dir/src/mso/formula.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/mso/formula.cpp.o.d"
  "/root/repo/src/mso/girth.cpp" "CMakeFiles/lanecert.dir/src/mso/girth.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/mso/girth.cpp.o.d"
  "/root/repo/src/mso/hamiltonian.cpp" "CMakeFiles/lanecert.dir/src/mso/hamiltonian.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/mso/hamiltonian.cpp.o.d"
  "/root/repo/src/mso/matching.cpp" "CMakeFiles/lanecert.dir/src/mso/matching.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/mso/matching.cpp.o.d"
  "/root/repo/src/mso/partition_props.cpp" "CMakeFiles/lanecert.dir/src/mso/partition_props.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/mso/partition_props.cpp.o.d"
  "/root/repo/src/mso/property.cpp" "CMakeFiles/lanecert.dir/src/mso/property.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/mso/property.cpp.o.d"
  "/root/repo/src/mso/triangle.cpp" "CMakeFiles/lanecert.dir/src/mso/triangle.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/mso/triangle.cpp.o.d"
  "/root/repo/src/mso/vertex_cover.cpp" "CMakeFiles/lanecert.dir/src/mso/vertex_cover.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/mso/vertex_cover.cpp.o.d"
  "/root/repo/src/pathwidth/pathwidth.cpp" "CMakeFiles/lanecert.dir/src/pathwidth/pathwidth.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/pathwidth/pathwidth.cpp.o.d"
  "/root/repo/src/pls/classic.cpp" "CMakeFiles/lanecert.dir/src/pls/classic.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/pls/classic.cpp.o.d"
  "/root/repo/src/pls/pointer.cpp" "CMakeFiles/lanecert.dir/src/pls/pointer.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/pls/pointer.cpp.o.d"
  "/root/repo/src/pls/scheme.cpp" "CMakeFiles/lanecert.dir/src/pls/scheme.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/pls/scheme.cpp.o.d"
  "/root/repo/src/pls/transform.cpp" "CMakeFiles/lanecert.dir/src/pls/transform.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/pls/transform.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "CMakeFiles/lanecert.dir/src/runtime/executor.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/runtime/executor.cpp.o.d"
  "/root/repo/src/runtime/label_store.cpp" "CMakeFiles/lanecert.dir/src/runtime/label_store.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/runtime/label_store.cpp.o.d"
  "/root/repo/src/treewidth/tree_decomposition.cpp" "CMakeFiles/lanecert.dir/src/treewidth/tree_decomposition.cpp.o" "gcc" "CMakeFiles/lanecert.dir/src/treewidth/tree_decomposition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
