# Empty dependencies file for lanecert.
# This may be replaced when dependencies are built.
