file(REMOVE_RECURSE
  "liblanecert.a"
)
