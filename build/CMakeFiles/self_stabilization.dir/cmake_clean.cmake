file(REMOVE_RECURSE
  "CMakeFiles/self_stabilization.dir/examples/self_stabilization.cpp.o"
  "CMakeFiles/self_stabilization.dir/examples/self_stabilization.cpp.o.d"
  "self_stabilization"
  "self_stabilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/self_stabilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
