# Empty dependencies file for self_stabilization.
# This may be replaced when dependencies are built.
