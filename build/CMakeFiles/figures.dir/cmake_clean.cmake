file(REMOVE_RECURSE
  "CMakeFiles/figures.dir/examples/figures.cpp.o"
  "CMakeFiles/figures.dir/examples/figures.cpp.o.d"
  "figures"
  "figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
