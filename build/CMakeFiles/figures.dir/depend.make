# Empty dependencies file for figures.
# This may be replaced when dependencies are built.
