file(REMOVE_RECURSE
  "CMakeFiles/bench_soundness.dir/bench/bench_soundness.cpp.o"
  "CMakeFiles/bench_soundness.dir/bench/bench_soundness.cpp.o.d"
  "bench_soundness"
  "bench_soundness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_soundness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
