# Empty dependencies file for bench_soundness.
# This may be replaced when dependencies are built.
