// Corollary 1.2 in action: certifying F-minor-free graph classes with
// O(log n)-bit labels.
//
// The Excluding Forest Theorem (Robertson–Seymour) says every F-minor-free
// class (F a forest) has bounded pathwidth, so Theorem 1 applies.  The
// simplest instance is F = K3 ("triangle minor"): K3-minor-free == forest.
// This example certifies forests of growing size and prints the label-size
// column — the paper's headline O(log n) — next to log2(n) for comparison.

#include <cmath>
#include <cstdio>

#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"

using namespace lanecert;

int main() {
  std::printf("certifying K3-minor-freeness (forests) with Theorem 1\n\n");
  std::printf("%8s %12s %14s %10s %8s\n", "n", "maxLabel(b)", "label/log2(n)",
              "lanes", "depth");
  for (int spine : {8, 32, 128, 512, 2048}) {
    const Graph g = caterpillar(spine, 1);
    const IdAssignment ids = IdAssignment::random(g.numVertices(), 11);
    const CoreRunResult r = proveAndVerifyEdges(g, ids, makeForest());
    if (!r.propertyHolds || !r.sim.allAccept) {
      std::printf("unexpected failure at spine=%d\n", spine);
      return 1;
    }
    const double logn = std::log2(static_cast<double>(g.numVertices()));
    std::printf("%8d %12zu %14.0f %10d %8d\n", g.numVertices(),
                r.sim.maxLabelBits,
                static_cast<double>(r.sim.maxLabelBits) / logn,
                r.stats.numLanes, r.stats.hierarchyDepth);
  }
  std::printf(
      "\nthe label column is flat up to the O(log n) identifier growth —\n"
      "the 16x-larger instance does NOT pay 16x larger certificates.\n");

  // Negative control: a unicyclic graph is NOT K3-minor-free; the prover
  // refuses, and (tested extensively in tests/) no labeling is accepted.
  Graph cyclic = caterpillar(8, 1);
  cyclic.addEdge(0, 7);
  const IdAssignment ids = IdAssignment::random(cyclic.numVertices(), 3);
  const CoreRunResult bad = proveAndVerifyEdges(cyclic, ids, makeForest());
  std::printf("\nnegative control (graph with a cycle): prover says %s\n",
              bad.propertyHolds ? "HOLDS?!" : "property violated — no certificate");
  return bad.propertyHolds ? 1 : 0;
}
