// Wire-serving demo: the LaneCertService behind a socket.  Boots a
// WireServer on a loopback ephemeral port inside this process, then
// drives it the way a remote client would — same bytes, same protocol,
// just no second machine.
//
//   $ ./wire_demo
//
// Act 1 — the boundary adds nothing: prove a graph over the wire, decode
// the streamed certificate, and byte-compare it against a fresh
// in-process encode of proveCore.  Identical, always.
//
// Act 2 — pipelining: several requests in flight on one connection,
// replies matched by request id (out-of-order completion is fine).
//
// Act 3 — sessions: open a verify session, corrupt one edge label
// (REJECT), restore the honest bytes (ACCEPT) — the incremental
// re-verification path, over the wire.
//
// Act 4 — graceful drain: requestDrain() while requests are in flight;
// every outstanding request still resolves terminally, and the late
// client finds the listener closed.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/prover.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "net/protocol.hpp"
#include "net/wire_client.hpp"
#include "net/wire_server.hpp"

using namespace lanecert;

int main() {
  net::WireServerOptions opts;
  opts.service.numaAware = false;
  net::WireServer server(opts);
  server.start();
  std::printf("server on 127.0.0.1:%u\n\n", unsigned(server.port()));

  Rng rng(7);
  Graph g = randomBoundedPathwidth(64, 2, 0.4, rng).graph;
  const auto ids = IdAssignment::identity(g.numVertices());

  // --- Act 1: streamed certificate == in-process bytes -------------------
  net::WireClient client;
  client.connect("127.0.0.1", server.port());
  net::WireClient::Reply proved =
      client.wait(client.sendProve(g, "connectivity"));
  if (!proved.ok()) std::abort();
  const auto local = proveCore(g, ids, *makeConnectivity());
  const std::string localStream =
      net::encodeCertificateStream(local.propertyHolds, local.labels);
  std::printf("prove: %zu streamed bytes, byte-identical to proveCore: %s\n",
              proved.stream.size(),
              proved.stream == localStream ? "yes" : "NO");
  const net::CertificateStream cert =
      net::decodeCertificateStream(proved.stream);

  // --- Act 2: pipelined requests, replies matched by id -------------------
  std::vector<std::uint64_t> inflight;
  for (int i = 0; i < 4; ++i) {
    inflight.push_back(client.sendVerify(g, "connectivity", cert.labels));
    inflight.push_back(client.sendProve(g, "connectivity"));
  }
  int accepted = 0;
  for (auto it = inflight.rbegin(); it != inflight.rend(); ++it) {
    if (client.wait(*it).ok()) ++accepted;  // waited in reverse send order
  }
  std::printf("pipeline: %d/%zu replies ok (matched out of order)\n",
              accepted, inflight.size());

  // --- Act 3: a verify session over the wire ------------------------------
  const net::WireClient::Reply opened = client.wait(
      client.sendOpenSession(g, "connectivity", cert.labels));
  if (!opened.ok()) std::abort();
  const std::uint64_t session = net::decodeSessionHandle(opened.body);
  std::string corrupt = cert.labels[0];
  corrupt[corrupt.size() / 2] ^= 0x40;
  const auto tamper = net::decodeVerifyResult(
      client.wait(client.sendReverify(session, {{EdgeId{0}, corrupt}})).body);
  const auto restore = net::decodeVerifyResult(
      client
          .wait(client.sendReverify(session, {{EdgeId{0}, cert.labels[0]}}))
          .body);
  std::printf("session: corrupt edge 0 -> %s, restore -> %s\n",
              tamper.allAccept ? "ACCEPT (bug!)" : "reject",
              restore.allAccept ? "accept" : "REJECT (bug!)");
  client.wait(client.sendCloseSession(session));

  // --- Act 4: graceful drain ----------------------------------------------
  std::vector<std::uint64_t> pending;
  for (int i = 0; i < 4; ++i) pending.push_back(client.sendProve(g, "connectivity"));
  // Read barrier: the ping reply proves the server has READ the proves
  // above (requests on one connection are read in order) — drain promises
  // a terminal reply for every request it has seen, not for bytes still
  // in flight when the listener closes.
  if (!client.wait(client.sendPing()).ok()) std::abort();
  server.requestDrain();
  int terminal = 0;
  for (std::uint64_t id : pending) {
    const net::WireClient::Reply r = client.wait(id);
    if (r.ok() || r.status == net::Status::kCancelled ||
        r.status == net::Status::kShuttingDown) {
      ++terminal;
    }
  }
  std::printf("drain: %d/%zu in-flight requests resolved terminally\n",
              terminal, pending.size());
  bool lateRejected = false;
  try {
    net::WireClient late;
    late.connect("127.0.0.1", server.port());
    late.wait(late.sendPing());
  } catch (const std::exception&) {
    lateRejected = true;
  }
  std::printf("drain: late connection %s\n",
              lateRejected ? "refused (listener closed)" : "ACCEPTED (bug!)");

  server.stop();
  const net::WireServerStats st = server.stats();
  std::printf("\nstats: %llu conns, %llu frames, %llu completed\n",
              static_cast<unsigned long long>(st.connectionsAccepted),
              static_cast<unsigned long long>(st.framesRead),
              static_cast<unsigned long long>(st.requestsCompleted));
  return 0;
}
