// Regenerates the paper's illustrative figures as text artifacts
// (experiment F1 in DESIGN.md): Figure 1's 6-cycle path decomposition and
// interval representation, the lane partition / completion of Section 4,
// the V-insert/E-insert construction of Figure 7, and a hierarchical
// decomposition dump in the style of Figure 10.

#include <cstdio>

#include "graph/generators.hpp"
#include "interval/interval.hpp"
#include "klane/hierarchy.hpp"
#include "lane/embedding.hpp"
#include "lanewidth/lanewidth.hpp"
#include "pathwidth/pathwidth.hpp"

using namespace lanecert;

int main() {
  // --- Figure 1: the 6-cycle a..f = 0..5 -------------------------------
  std::printf("=== Figure 1: path decomposition of the 6-cycle ===\n");
  const Graph c6 = cycleGraph(6);
  const PathDecomposition pd({{0, 1, 2}, {0, 2, 3}, {0, 3, 4}, {0, 4, 5}});
  std::printf("%s", pd.toString().c_str());
  std::printf("valid: %s, width: %d (pathwidth 2)\n\n",
              pd.isValidFor(c6) ? "yes" : "NO", pd.width());

  const IntervalRepresentation rep = toIntervalRepresentation(pd, 6);
  std::printf("interval representation (width %d):\n%s\n", rep.width(),
              rep.toString().c_str());

  // --- Section 4: lanes, weak completion, completion --------------------
  std::printf("=== Figure 3 style: lane partition and completion ===\n");
  const LanePlan plan = buildLanePlan(c6, rep);
  std::printf("%s", plan.lanes.toString().c_str());
  std::printf("max embedding congestion: %d\n", plan.maxCongestion);
  for (const EmbeddedEdge& emb : plan.embeddings) {
    std::printf("  %s edge {%d,%d} via path:",
                emb.edge.kind == CompletionEdge::Kind::kLane ? "lane" : "init",
                emb.edge.u, emb.edge.v);
    for (VertexId v : emb.path) std::printf(" %d", v);
    std::printf("\n");
  }

  // --- Figure 7: a lanewidth construction ------------------------------
  std::printf("\n=== Figure 7 style: V-insert / E-insert construction ===\n");
  const ConstructionSequence seq = buildConstruction(c6, rep, plan.lanes);
  std::printf("initial path:");
  for (VertexId v : seq.initialPath) std::printf(" %d", v);
  std::printf("\n");
  for (const ConstructionOp& op : seq.ops) {
    if (op.kind == ConstructionOp::Kind::kVInsert) {
      std::printf("  V-insert(lane %d) -> vertex %d\n", op.i, op.vertex);
    } else {
      std::printf("  E-insert(lane %d, lane %d)\n", op.i, op.j);
    }
  }

  // --- Figure 10: the hierarchical decomposition -----------------------
  std::printf("\n=== Figure 10 style: hierarchical decomposition ===\n");
  const HierarchyResult hier = buildHierarchy(seq);
  std::printf("%s", hier.hierarchy.toString().c_str());
  std::printf("depth %d <= 2w = %d (Observation 5.5)\n",
              hier.hierarchy.depth(), 2 * seq.numLanes());
  return 0;
}
