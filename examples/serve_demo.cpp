// Batched serving demo: one LaneCertService, one shared worker pool, many
// concurrent (graph, property) jobs in flight.
//
//   $ ./serve_demo
//
// Act 1 — throughput: a small "catalog" of graphs is served under several
// properties at once: prove requests for every (graph, property) pair plus
// verify requests over the proved labels, all submitted up front and
// resolved through futures.  The service amortizes thread wake-ups across
// requests, plans each graph once (plan cache), and coalesces the
// duplicate requests a real front-end produces under retries.
//
// Act 2 — fault tolerance and shutdown under load, exercising the error
// taxonomy of serve/errors.hpp.  Every failure a client can see is one of
// four types, so handlers branch on WHAT failed instead of parsing
// messages:
//
//   RejectedError          synchronous from submit*: admission control
//                          turned the request away at maxQueueDepth; carries
//                          a retry-after hint scaled by the backlog
//   DeadlineExceededError  through the future: the job's deadline passed
//                          before dispatch; the work never ran
//   CancelledError         through the future: cancelPending() discarded
//                          the job before it started
//   TransientError         retryable; session drivers retry it up to
//                          JobOptions::maxAttempts with doubling backoff
//                          before it ever reaches a future
//
// Anything else (DecodeError, std::invalid_argument, ...) is a permanent
// failure — retrying the identical request would fail identically.

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "serve/errors.hpp"
#include "serve/service.hpp"

using namespace lanecert;

int main() {
  // The catalog: three graph shapes of different sizes.
  struct Entry {
    const char* name;
    Graph graph;
    IdAssignment ids;
  };
  std::vector<Entry> catalog;
  catalog.push_back({"caterpillar(40,2)", caterpillar(40, 2), {}});
  catalog.push_back({"path(200)", pathGraph(200), {}});
  catalog.push_back({"cycle(64)", cycleGraph(64), {}});
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    catalog[i].ids = IdAssignment::random(catalog[i].graph.numVertices(),
                                          static_cast<std::uint64_t>(i) + 1);
  }
  const std::vector<PropertyPtr> props = {makeConnectivity(), makeForest()};

  serve::LaneCertService service;  // pool sized to the hardware
  std::printf("service up: %d pool worker(s)\n", service.poolWorkers());

  // Submit every (graph, property) prove job TWICE (simulated retries) —
  // all up front, nothing blocks until the futures are read.
  struct Pending {
    const Entry* entry;
    PropertyPtr prop;
    std::shared_future<CoreProveResult> future;
  };
  std::vector<Pending> pending;
  for (const Entry& e : catalog) {
    for (const PropertyPtr& p : props) {
      for (int attempt = 0; attempt < 2; ++attempt) {
        pending.push_back(
            {&e, p, service.submitProve(serve::ProveJob{e.graph, e.ids, p, {}})});
      }
    }
  }

  // Resolve the batch; chase each held labeling with TWO verify requests
  // sharing one payload (retries coalesce by payload identity).
  std::vector<std::shared_future<SimulationResult>> verifications;
  for (std::size_t i = 0; i < pending.size(); i += 2) {
    Pending& p = pending[i];
    const CoreProveResult& result = p.future.get();
    std::printf("  prove  %-18s %-14s -> %s (x2 requests)\n", p.entry->name,
                p.prop->name().c_str(),
                result.propertyHolds ? "labeled" : "property fails");
    if (!result.propertyHolds) continue;
    const auto payload =
        std::make_shared<const std::vector<std::string>>(result.labels);
    for (int attempt = 0; attempt < 2; ++attempt) {
      verifications.push_back(service.submitVerify(serve::VerifyJob{
          p.entry->graph, p.entry->ids, payload, p.prop, {}}));
    }
  }
  bool allAccept = true;
  for (auto& v : verifications) allAccept = allAccept && v.get().allAccept;
  std::printf("  verify %zu labelings -> %s\n", verifications.size(),
              allAccept ? "all vertices ACCEPT" : "REJECTED?!");

  const serve::ServiceStats stats = service.stats();
  std::printf(
      "stats: %llu prove + %llu verify computed, %llu coalesced/cached, "
      "%llu plan-cache hits\n",
      static_cast<unsigned long long>(stats.proveJobsCompleted),
      static_cast<unsigned long long>(stats.verifyJobsCompleted),
      static_cast<unsigned long long>(stats.resultCacheHits),
      static_cast<unsigned long long>(stats.planCacheHits));

  // ---- Act 2: fault tolerance + shutdown under load ----------------------
  // A deliberately tiny service (one worker, shallow queue, no result
  // cache — every request is real work) so the failure paths actually fire.
  serve::ServiceOptions tight;
  tight.numThreads = 1;
  tight.maxConcurrentJobs = 1;
  tight.enableResultCache = false;
  tight.maxQueueDepth = 4;
  serve::LaneCertService loaded(tight);
  const Graph burstGraph = pathGraph(160);
  const IdAssignment burstIds = IdAssignment::random(160, 99);
  const PropertyPtr conn = makeConnectivity();

  // Backpressure: hammer submit until admission control pushes back.  A
  // production client would sleep retryAfter() and resubmit; the demo just
  // counts the rejections.
  std::vector<std::shared_future<CoreProveResult>> burst;
  std::size_t rejected = 0;
  std::chrono::milliseconds lastHint{0};
  for (int i = 0; i < 16; ++i) {
    serve::ProveJob job{burstGraph, burstIds, conn, {}};
    // Distinct deadlines defeat request coalescing, so every accepted
    // submission occupies its own queue slot (and a generous deadline
    // keeps the accepted jobs dispatchable).
    job.options.deadline = std::chrono::steady_clock::now() +
                           std::chrono::seconds(60 + i);
    try {
      burst.push_back(loaded.submitProve(std::move(job)));
    } catch (const serve::RejectedError& e) {
      ++rejected;
      lastHint = e.retryAfter();
    }
  }
  std::printf("  burst  16 submitted -> %zu queued, %zu rejected "
              "(last retry-after hint %lldms)\n",
              burst.size(), rejected,
              static_cast<long long>(lastHint.count()));

  // Shutdown under load: discard everything that has not started, then
  // drain what is running.  EVERY future still resolves — with a result
  // for jobs that ran, with CancelledError for the discarded ones; nothing
  // is left hanging for the destructor to surprise.
  const std::size_t discarded = loaded.cancelPending();
  loaded.drain();
  std::size_t completed = 0;
  std::size_t cancelled = 0;
  for (auto& f : burst) {
    try {
      (void)f.get();
      ++completed;
    } catch (const serve::CancelledError&) {
      ++cancelled;
    }
  }
  std::printf("  shutdown: cancelPending discarded %zu; of %zu queued "
              "futures %zu completed, %zu cancelled — all resolved\n",
              discarded, burst.size(), completed, cancelled);
  const bool accounted = completed + cancelled == burst.size();

  // Deadlines: an already-expired job fails fast with
  // DeadlineExceededError — the work never runs, the future still resolves.
  // (On the now-idle service, so backpressure cannot preempt the demo.)
  serve::ProveJob late{burstGraph, burstIds, conn, {}};
  late.options.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  bool deadlineFired = false;
  try {
    (void)loaded.submitProve(std::move(late)).get();
  } catch (const serve::DeadlineExceededError&) {
    deadlineFired = true;
  }
  std::printf("  deadline-expired job -> %s\n",
              deadlineFired ? "DeadlineExceededError (work never ran)"
                            : "ran anyway?!");

  return allAccept && accounted && deadlineFired ? 0 : 1;
}
