// Batched serving demo: one LaneCertService, one shared worker pool, many
// concurrent (graph, property) jobs in flight.
//
//   $ ./serve_demo
//
// A small "catalog" of graphs is served under several properties at once:
// prove requests for every (graph, property) pair plus verify requests over
// the proved labels, all submitted up front and resolved through futures.
// The service amortizes thread wake-ups across requests, plans each graph
// once (plan cache), and coalesces the duplicate requests a real front-end
// produces under retries.

#include <cstdio>
#include <vector>

#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "serve/service.hpp"

using namespace lanecert;

int main() {
  // The catalog: three graph shapes of different sizes.
  struct Entry {
    const char* name;
    Graph graph;
    IdAssignment ids;
  };
  std::vector<Entry> catalog;
  catalog.push_back({"caterpillar(40,2)", caterpillar(40, 2), {}});
  catalog.push_back({"path(200)", pathGraph(200), {}});
  catalog.push_back({"cycle(64)", cycleGraph(64), {}});
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    catalog[i].ids = IdAssignment::random(catalog[i].graph.numVertices(),
                                          static_cast<std::uint64_t>(i) + 1);
  }
  const std::vector<PropertyPtr> props = {makeConnectivity(), makeForest()};

  serve::LaneCertService service;  // pool sized to the hardware
  std::printf("service up: %d pool worker(s)\n", service.poolWorkers());

  // Submit every (graph, property) prove job TWICE (simulated retries) —
  // all up front, nothing blocks until the futures are read.
  struct Pending {
    const Entry* entry;
    PropertyPtr prop;
    std::shared_future<CoreProveResult> future;
  };
  std::vector<Pending> pending;
  for (const Entry& e : catalog) {
    for (const PropertyPtr& p : props) {
      for (int attempt = 0; attempt < 2; ++attempt) {
        pending.push_back(
            {&e, p, service.submitProve(serve::ProveJob{e.graph, e.ids, p, {}})});
      }
    }
  }

  // Resolve the batch; chase each held labeling with TWO verify requests
  // sharing one payload (retries coalesce by payload identity).
  std::vector<std::shared_future<SimulationResult>> verifications;
  for (std::size_t i = 0; i < pending.size(); i += 2) {
    Pending& p = pending[i];
    const CoreProveResult& result = p.future.get();
    std::printf("  prove  %-18s %-14s -> %s (x2 requests)\n", p.entry->name,
                p.prop->name().c_str(),
                result.propertyHolds ? "labeled" : "property fails");
    if (!result.propertyHolds) continue;
    const auto payload =
        std::make_shared<const std::vector<std::string>>(result.labels);
    for (int attempt = 0; attempt < 2; ++attempt) {
      verifications.push_back(service.submitVerify(serve::VerifyJob{
          p.entry->graph, p.entry->ids, payload, p.prop, {}}));
    }
  }
  bool allAccept = true;
  for (auto& v : verifications) allAccept = allAccept && v.get().allAccept;
  std::printf("  verify %zu labelings -> %s\n", verifications.size(),
              allAccept ? "all vertices ACCEPT" : "REJECTED?!");

  const serve::ServiceStats stats = service.stats();
  std::printf(
      "stats: %llu prove + %llu verify computed, %llu coalesced/cached, "
      "%llu plan-cache hits\n",
      static_cast<unsigned long long>(stats.proveJobsCompleted),
      static_cast<unsigned long long>(stats.verifyJobsCompleted),
      static_cast<unsigned long long>(stats.resultCacheHits),
      static_cast<unsigned long long>(stats.planCacheHits));
  return allAccept ? 0 : 1;
}
