// Quickstart: certify an MSO2 property on a bounded-pathwidth network with
// O(log n)-bit labels, then watch a corrupted certificate get caught.
//
//   $ ./quickstart
//
// Walks through the library's three-step API:
//   1. build a graph (here: a caterpillar — pathwidth 1),
//   2. run the centralized prover for a property (here: acyclicity),
//   3. run the strictly-local verifier at every vertex.

#include <cstdio>

#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"

using namespace lanecert;

int main() {
  // 1. The network: a caterpillar with 30 spine vertices and 2 legs each
  //    (90 vertices, pathwidth 1), with random distinct O(log n)-bit ids.
  const Graph g = caterpillar(30, 2);
  const IdAssignment ids = IdAssignment::random(g.numVertices(), /*seed=*/42);
  std::printf("network: %s (pathwidth 1)\n", g.summary().c_str());

  // 2+3. Prove and locally verify "G is a forest" (== K3-minor-free).
  const PropertyPtr prop = makeForest();
  const CoreRunResult run = proveAndVerifyEdges(g, ids, prop);
  if (!run.propertyHolds) {
    std::printf("prover: property does not hold — nothing to certify\n");
    return 1;
  }
  std::printf("prover: property '%s' holds; labels assigned to %d edges\n",
              prop->name().c_str(), g.numEdges());
  std::printf("verifier: %s (max label %zu bits, lanes=%d, depth=%d)\n",
              run.sim.allAccept ? "all vertices ACCEPT" : "REJECTED?!",
              run.sim.maxLabelBits, run.stats.numLanes,
              run.stats.hierarchyDepth);

  // Fault detection: flip one certificate bit and re-run the verifier.
  CoreProveResult labels = proveCore(g, ids, *prop);
  labels.labels[0][3] = static_cast<char>(labels.labels[0][3] ^ 0x10);
  const SimulationResult after =
      simulateEdgeScheme(g, ids, labels.labels, makeCoreVerifier(prop));
  std::printf("after 1-bit corruption: %zu vertex(es) raise an alarm\n",
              after.rejecting.size());
  return after.rejecting.empty() ? 1 : 0;
}
