// Self-stabilization scenario (the original motivation for proof labeling
// schemes, Section 1): a token-ring deployment must verify that its
// physical topology really is one simple cycle.  Certificates are installed
// once by a deployment tool (the prover); afterwards every processor
// re-checks its O(log n)-bit neighborhood forever.  We simulate three
// fault events and show that in each one at least one processor raises an
// alarm — locally, with no global coordination.

#include <cstdio>

#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"

using namespace lanecert;

namespace {

int alarms(const Graph& g, const IdAssignment& ids,
           const std::vector<std::string>& labels) {
  const auto res =
      simulateEdgeScheme(g, ids, labels, makeCoreVerifier(makeCycleProperty()));
  return static_cast<int>(res.rejecting.size());
}

}  // namespace

int main() {
  const int n = 24;
  const Graph ring = cycleGraph(n);
  const IdAssignment ids = IdAssignment::random(n, 7);

  std::printf("deploying a %d-node token ring; property: 'is a simple cycle'\n", n);
  const CoreProveResult honest = proveCore(ring, ids, *makeCycleProperty());
  if (!honest.propertyHolds) return 1;
  std::printf("installed certificates: max %zu bits per link\n",
              honest.stats.maxLabelBits);
  std::printf("steady state: %d alarms (expected 0)\n\n",
              alarms(ring, ids, honest.labels));

  // Fault 1: a link dies (the ring degenerates to a path) — certificates
  // are stale, some processor must notice.
  {
    Graph broken(n);
    for (EdgeId e = 0; e + 1 < ring.numEdges(); ++e) {
      broken.addEdge(ring.edge(e).u, ring.edge(e).v);
    }
    auto labels = honest.labels;
    labels.pop_back();
    std::printf("fault 1 (link failure, ring -> path): %d alarms\n",
                alarms(broken, ids, labels));
  }

  // Fault 2: memory corruption flips bits in one processor's certificate.
  {
    auto labels = honest.labels;
    Rng rng(5);
    (void)mutateLabels(labels, Mutation::kScramble, rng);
    std::printf("fault 2 (certificate corruption):       %d alarms\n",
                alarms(ring, ids, labels));
  }

  // Fault 3: a rogue link is patched in (a chord), making the topology a
  // non-cycle while every old certificate is still intact; the chord gets a
  // replayed certificate from another link.
  {
    Graph chorded = cycleGraph(n);
    chorded.addEdge(0, n / 2);
    auto labels = honest.labels;
    labels.push_back(labels[0]);
    std::printf("fault 3 (rogue chord added):            %d alarms\n",
                alarms(chorded, ids, labels));
  }

  std::printf("\nevery fault was detected by at least one processor.\n");
  return 0;
}
