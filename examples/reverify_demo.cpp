// Incremental re-verification demo: a VerifySession absorbing edit batches
// and re-checking only the dirty vertices, plus the serving-layer session
// registry doing the same behind LaneCertService.
//
//   $ ./reverify_demo
//
// A labeling is proved once, then served under a stream of label edits:
// corrupt one edge, watch exactly its two endpoints flip to rejecting,
// restore it, watch them flip back — each step re-verifying a handful of
// vertices instead of the whole graph, with verdicts byte-identical to a
// fresh full sweep (which the demo cross-checks at every step).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/prover.hpp"
#include "core/verify_session.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "pls/scheme.hpp"
#include "serve/service.hpp"

using namespace lanecert;

namespace {

double millisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  constexpr int kN = 1024;
  Rng rng(41);
  auto bp = randomBoundedPathwidth(kN, 2, 0.4, rng);
  const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
  const auto ids = IdAssignment::random(kN, 13);
  const auto prop = makeConnectivity();
  const auto proved = proveCore(bp.graph, ids, *prop, &rep, 1);
  std::printf("proved %s: %d edges labeled\n", bp.graph.summary().c_str(),
              bp.graph.numEdges());

  // --- Core API: VerifySession --------------------------------------------
  VerifySession session(bp.graph, ids, proved.labels, prop);
  auto start = std::chrono::steady_clock::now();
  const SimulationResult initial = session.verifyAll(/*numThreads=*/0);
  std::printf("full sweep: allAccept=%d in %.1f ms (%zu cached entries)\n",
              static_cast<int>(initial.allAccept), millisSince(start),
              session.sweepCacheSize());

  const EdgeId victim = 7;
  std::string corrupted = proved.labels[static_cast<std::size_t>(victim)];
  corrupted[corrupted.size() / 2] ^= 0x10;

  std::vector<EdgeLabelEdit> batch = {{victim, corrupted}};
  start = std::chrono::steady_clock::now();
  const SimulationResult broken = session.reverifyEdits(batch, 0);
  std::printf(
      "corrupt edge %d: %zu rejecting vertex(es) in %.2f ms "
      "(store version %llu)\n",
      victim, broken.rejecting.size(), millisSince(start),
      static_cast<unsigned long long>(session.storeVersion()));

  batch[0].bytes = proved.labels[static_cast<std::size_t>(victim)];
  start = std::chrono::steady_clock::now();
  const SimulationResult healed = session.reverifyEdits(batch, 0);
  std::printf("restore edge %d: allAccept=%d in %.2f ms\n", victim,
              static_cast<int>(healed.allAccept), millisSince(start));

  // Cross-check: byte-identical to a fresh full sweep of the same labels.
  const SimulationResult fresh = simulateEdgeScheme(
      bp.graph, ids, proved.labels, makeCoreVerifier(prop));
  std::printf("matches fresh full sweep: %s\n",
              healed.rejecting == fresh.rejecting &&
                      healed.totalLabelBits == fresh.totalLabelBits
                  ? "yes"
                  : "NO");

  // --- Serving API: session registry --------------------------------------
  serve::LaneCertService service;
  const auto payload =
      std::make_shared<const std::vector<std::string>>(proved.labels);
  const std::uint64_t sid = service.openVerifySession(
      serve::VerifyJob{bp.graph, ids, payload, prop, {}});
  auto sweep = service.submitReverify({sid, {}});  // initial full sweep
  auto corrupt = service.submitReverify({sid, {{victim, corrupted}}});
  auto restore = service.submitReverify(
      {sid, {{victim, proved.labels[static_cast<std::size_t>(victim)]}}});
  // Resolve in submission order BEFORE reading the version (function
  // argument evaluation order is unspecified).
  const bool sweepOk = sweep.get().allAccept;
  const std::size_t corruptRejects = corrupt.get().rejecting.size();
  const bool restoreOk = restore.get().allAccept;
  std::printf(
      "served session %llu: sweep allAccept=%d, corrupt rejects %zu, "
      "restore allAccept=%d (version %llu)\n",
      static_cast<unsigned long long>(sid), static_cast<int>(sweepOk),
      corruptRejects, static_cast<int>(restoreOk),
      static_cast<unsigned long long>(service.sessionStoreVersion(sid)));
  service.closeVerifySession(sid);
  return 0;
}
