// MSO2 playground: the logical definitions behind the certified properties.
//
// Prints each bundled formula, evaluates it on small graphs with the naive
// model checker, and confirms the certification pipeline reaches the same
// verdict — connecting Section 1.2's logic to Section 6's scheme.

#include <cstdio>

#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "mso/formula.hpp"
#include "mso/properties.hpp"

using namespace lanecert;

namespace {

void showCase(const char* title, const MsoPtr& formula, const PropertyPtr& prop,
              const Graph& g, const char* gname) {
  const bool logic = msoEvaluate(formula, g);
  const IdAssignment ids = IdAssignment::random(g.numVertices(), 3);
  const CoreRunResult run = proveAndVerifyEdges(g, ids, prop);
  std::printf("%-18s on %-10s: MSO says %-5s | scheme %s\n", title, gname,
              logic ? "true" : "false",
              run.propertyHolds
                  ? (run.sim.allAccept ? "certified + verified" : "BROKEN")
                  : "refuses (property false)");
  if (logic != run.propertyHolds) std::printf("  *** DISAGREEMENT ***\n");
}

}  // namespace

int main() {
  std::printf("=== MSO2 formulas (Section 1.2) ===\n\n");
  std::printf("bipartite:\n  %s\n\n", msoToString(msoBipartite()).c_str());
  std::printf("forest (acyclic):\n  %s\n\n", msoToString(msoForest()).c_str());
  std::printf("perfect matching:\n  %s\n\n",
              msoToString(msoPerfectMatching()).c_str());
  std::printf("triangle-free:\n  %s\n\n",
              msoToString(msoTriangleFree()).c_str());

  std::printf("=== logic vs. certification pipeline ===\n\n");
  showCase("bipartite", msoBipartite(), makeColorability(2), cycleGraph(6), "C6");
  showCase("bipartite", msoBipartite(), makeColorability(2), cycleGraph(5), "C5");
  showCase("forest", msoForest(), makeForest(), starGraph(4), "star4");
  showCase("forest", msoForest(), makeForest(), cycleGraph(4), "C4");
  showCase("perfect matching", msoPerfectMatching(), makePerfectMatching(),
           pathGraph(6), "P6");
  showCase("perfect matching", msoPerfectMatching(), makePerfectMatching(),
           pathGraph(5), "P5");
  showCase("hamiltonian cycle", msoHamiltonianCycle(), makeHamiltonianCycle(),
           cycleGraph(5), "C5");
  showCase("hamiltonian cycle", msoHamiltonianCycle(), makeHamiltonianCycle(),
           pathGraph(5), "P5");
  showCase("triangle-free", msoTriangleFree(), makeTriangleFree(),
           completeGraph(3), "K3");
  return 0;
}
