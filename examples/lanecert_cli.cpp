// lanecert_cli — command-line driver for the certification pipeline.
//
//   lanecert_cli info   <edgelist>                    structural report
//   lanecert_cli prove  <edgelist> <property> <out>   write certificates
//   lanecert_cli verify <edgelist> <property> <in>    run the local verifier
//   lanecert_cli props                                list property names
//
// Edge-list format: first line "n m", then one "u v" line per edge
// (see graph/io.hpp).  Certificates are stored one hex line per edge.
// Vertex identifiers are derived deterministically from the file
// (identity assignment) so prove/verify runs agree across invocations.

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/scheme.hpp"
#include "graph/algorithms.hpp"
#include "graph/io.hpp"
#include "mso/properties.hpp"
#include "net/protocol.hpp"
#include "pathwidth/pathwidth.hpp"

using namespace lanecert;

namespace {

// The wire protocol's property-name grammar is the one the CLI always
// used; both now resolve through the same table.
PropertyPtr parseProperty(const std::string& name) {
  return net::propertyByName(name);
}

void listProperties() {
  std::printf(
      "properties:\n"
      "  forest connectivity bipartite 3col is-path is-cycle matching\n"
      "  ham-cycle ham-path triangle-free vc:<c> dom:<c> ind:<c> maxdeg:<d>\n");
}

Graph loadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return fromEdgeList(buf.str());
}

std::string toHex(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  return out;
}

std::string fromHex(const std::string& hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    throw std::runtime_error("bad hex digit");
  };
  if (hex.size() % 2 != 0) throw std::runtime_error("odd hex length");
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return out;
}

int cmdInfo(const std::string& file) {
  const Graph g = loadGraph(file);
  std::printf("%s, connected: %s\n", g.summary().c_str(),
              isConnected(g) ? "yes" : "no");
  const auto exact = exactPathwidth(g, 18);
  if (exact) {
    std::printf("pathwidth (exact): %d\n", *exact);
  } else {
    const Layout greedy = greedyVertexSeparation(g);
    std::printf("pathwidth (greedy upper bound): %d\n", greedy.cost);
  }
  const auto d = degeneracyOrient(g);
  std::printf("degeneracy: %d, max degree: %d\n", d.degeneracy, maxDegree(g));
  return 0;
}

int cmdProve(const std::string& file, const std::string& propName,
             const std::string& outFile) {
  const Graph g = loadGraph(file);
  const PropertyPtr prop = parseProperty(propName);
  if (!prop) {
    std::fprintf(stderr, "unknown property '%s'\n", propName.c_str());
    listProperties();
    return 2;
  }
  const IdAssignment ids = IdAssignment::identity(g.numVertices());
  const CoreProveResult r = proveCore(g, ids, *prop);
  if (!r.propertyHolds) {
    std::printf("property '%s' does NOT hold; no certificates exist\n",
                prop->name().c_str());
    return 1;
  }
  std::ofstream out(outFile);
  for (const std::string& l : r.labels) out << toHex(l) << '\n';
  std::printf(
      "certified '%s': %d labels, max %zu bits (lanes=%d depth=%d cong=%d)\n",
      prop->name().c_str(), g.numEdges(), r.stats.maxLabelBits,
      r.stats.numLanes, r.stats.hierarchyDepth, r.stats.maxCongestion);
  std::printf("wrote %s\n", outFile.c_str());
  return 0;
}

int cmdVerify(const std::string& file, const std::string& propName,
              const std::string& labelFile) {
  const Graph g = loadGraph(file);
  const PropertyPtr prop = parseProperty(propName);
  if (!prop) {
    std::fprintf(stderr, "unknown property '%s'\n", propName.c_str());
    return 2;
  }
  std::ifstream in(labelFile);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", labelFile.c_str());
    return 2;
  }
  std::vector<std::string> labels;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) labels.push_back(fromHex(line));
  }
  if (labels.size() != static_cast<std::size_t>(g.numEdges())) {
    std::fprintf(stderr, "expected %d labels, found %zu\n", g.numEdges(),
                 labels.size());
    return 2;
  }
  const IdAssignment ids = IdAssignment::identity(g.numVertices());
  const auto res = simulateEdgeScheme(g, ids, labels, makeCoreVerifier(prop));
  if (res.allAccept) {
    std::printf("ACCEPT: all %d vertices verified '%s'\n", g.numVertices(),
                prop->name().c_str());
    return 0;
  }
  std::printf("REJECT: %zu vertex(es) raised alarms:", res.rejecting.size());
  for (std::size_t i = 0; i < res.rejecting.size() && i < 10; ++i) {
    std::printf(" %d", res.rejecting[i]);
  }
  std::printf("\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 1 && args[0] == "props") {
      listProperties();
      return 0;
    }
    if (args.size() == 2 && args[0] == "info") return cmdInfo(args[1]);
    if (args.size() == 4 && args[0] == "prove") {
      return cmdProve(args[1], args[2], args[3]);
    }
    if (args.size() == 4 && args[0] == "verify") {
      return cmdVerify(args[1], args[2], args[3]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::fprintf(stderr,
               "usage:\n"
               "  lanecert_cli info   <edgelist>\n"
               "  lanecert_cli prove  <edgelist> <property> <labels-out>\n"
               "  lanecert_cli verify <edgelist> <property> <labels-in>\n"
               "  lanecert_cli props\n");
  return 2;
}
