#!/usr/bin/env bash
# Multi-process verification smoke: the CI dist gate (verify.sh --ci exit
# class 11 and the dist-smoke workflow job both run this script).
#
#   1. Byte-identity run: coordinator + K forked workers over an n-vertex
#      bounded-pathwidth workload.  dist_verify proves once, then runs the
#      full sweep and several incremental edit rounds (boundary-straddling
#      batches included) through BOTH the distributed verifier and the
#      single-process VerifySession, failing on any field divergence.
#   2. Worker-kill run: the same workload with one worker armed to SIGKILL
#      itself mid-sweep.  The coordinator must detect the death, re-fork
#      the partition, replay the edit journal, and still match the
#      single-process results byte for byte; dist_verify fails if no death
#      was actually observed, so the drill can never pass vacuously.
#
# Usage: scripts/dist_smoke.sh <build-dir> [n] [workers]

set -euo pipefail

BUILD_DIR="${1:?usage: dist_smoke.sh <build-dir> [n] [workers]}"
N="${2:-65536}"
WORKERS="${3:-4}"
DIST_VERIFY="${BUILD_DIR}/dist_verify"

if [ ! -x "${DIST_VERIFY}" ]; then
  echo "dist_smoke: ${DIST_VERIFY} not found or not executable" >&2
  exit 1
fi

echo "dist_smoke: byte-identity, n=${N} workers=${WORKERS}"
"${DIST_VERIFY}" --n "${N}" --k "${WORKERS}" --threads 2 --rounds 3

# Kill a middle partition deep inside its sweep: late enough that verdict
# bytes were already written (recovery must overwrite them), early enough
# that the sweep is still running when the death lands.
echo "dist_smoke: worker-kill recovery, n=${N} workers=${WORKERS}"
"${DIST_VERIFY}" --n "${N}" --k "${WORKERS}" --threads 2 --rounds 2 \
  --die $((WORKERS / 2)) --die-after $((N / WORKERS / 2))

echo "dist_smoke: OK"
