#!/usr/bin/env bash
# Tier-1 verification: configure + build + ctest + a 1-iteration smoke of
# every benchmark binary.  Usage: scripts/verify.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

# Guard: generated build trees must never be committed (PR 1 accidentally
# checked in ~300 files under build/; .gitignore now covers it).
if tracked_build="$(git ls-files -- 'build/*' "*.o")" && [ -n "${tracked_build}" ]; then
  echo "verify.sh: FAIL — generated files are tracked by git:" >&2
  echo "${tracked_build}" | head -20 >&2
  exit 1
fi

# Guard: clang-format drift (skipped with a warning when the binary is
# absent, e.g. on minimal containers — CI images should ship it).
if command -v clang-format >/dev/null 2>&1; then
  if ! git ls-files -- '*.cpp' '*.hpp' | xargs -r clang-format --dry-run --Werror; then
    echo "verify.sh: FAIL — clang-format drift (run: git ls-files '*.cpp' '*.hpp' | xargs clang-format -i)" >&2
    exit 1
  fi
else
  echo "verify.sh: clang-format not found; skipping format check"
fi

cmake -B build -S . "$@"
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

# Benchmark smoke: every suite must start, register, and execute at least
# one benchmark.  Filter to the smallest size arguments and cap measuring
# time so this stays seconds, not minutes, per binary.
shopt -s nullglob
benches=(build/bench_*)
if [ "${#benches[@]}" -eq 0 ]; then
  echo "verify.sh: no benchmark binaries (google-benchmark absent?); skipping smoke"
else
  for b in "${benches[@]}"; do
    [ -x "$b" ] || continue
    echo "--- smoke: $b"
    "$b" --benchmark_min_time=0.001 \
         --benchmark_filter='/(0|1|10|16|50|64|100|200)$|/1/real_time$|^[^/]+$' >/dev/null
  done
fi

echo "verify.sh: OK"
