#!/usr/bin/env bash
# Tier-1 verification: configure + build + ctest + a 1-iteration smoke of
# every benchmark binary.  Usage: scripts/verify.sh [extra cmake args...]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S . "$@"
cmake --build build -j "${JOBS}"
ctest --test-dir build --output-on-failure -j "${JOBS}"

# Benchmark smoke: every suite must start, register, and execute at least
# one benchmark.  Filter to the smallest size arguments and cap measuring
# time so this stays seconds, not minutes, per binary.
shopt -s nullglob
benches=(build/bench_*)
if [ "${#benches[@]}" -eq 0 ]; then
  echo "verify.sh: no benchmark binaries (google-benchmark absent?); skipping smoke"
else
  for b in "${benches[@]}"; do
    [ -x "$b" ] || continue
    echo "--- smoke: $b"
    "$b" --benchmark_min_time=0.001 \
         --benchmark_filter='/(0|1|10|16|50|64|100|200)$|/1/real_time$|^[^/]+$' >/dev/null
  done
fi

echo "verify.sh: OK"
