#!/usr/bin/env bash
# Tier-1 verification: lint checks, configure + build + ctest, and a
# 1-iteration smoke of every benchmark binary.
#
# Usage: scripts/verify.sh [--lint-only] [--no-bench] [--ci] [extra cmake args...]
#
#   --lint-only   run only the fast checks (tracked generated files,
#                 clang-format) and exit — what the CI lint job runs
#   --no-bench    skip the benchmark smoke after build + ctest
#   --ci          machine-readable progress: ONE line per check
#                 ("verify.sh: [ci] check=<name> status=<ok|fail|skip> exit=<code>"),
#                 so a workflow log shows which exit-code class fired
#                 without scrolling through build output.  Also runs the
#                 SIMD/scalar cross-build check: the CLI proves and
#                 verifies a fixed graph in the main build AND a
#                 -DLANECERT_SIMD=OFF build, and the certificate bytes
#                 must be identical (the kernels are exact integer/byte
#                 predicates, so vectorization may never change a bit)
#
# Distinct exit codes per failure class, so CI and scripts can tell what
# broke without parsing output:
#   0  everything passed
#   2  generated build files are tracked by git
#   3  clang-format drift
#   4  configure or build failure
#   5  test failure
#   6  benchmark smoke failure
#   7  SIMD/scalar cross-build certificate divergence (--ci only)
#   8  certificate fuzz regression (--ci only): the deterministic fuzz
#      campaign found a verifier crash/hang or an accepted corrupting
#      mutation; reproduction artifacts are left in build/fuzz-artifacts
#   9  wire smoke failure (--ci only): the loopback serving daemon failed
#      to boot, the streamed certificate differed from the in-process
#      bytes, the load driver fell below its throughput floor, or the
#      SIGTERM drain did not complete (scripts/wire_smoke.sh)
#  10  snapshot round-trip divergence (--ci only): a warm-started prove
#      (plan loaded from a persisted snapshot, snapshot_tool --require-hit)
#      produced different certificate bytes than a cold prove of the same
#      graph, or the warm path failed to actually hit the snapshot
#  11  dist smoke failure (--ci only): the multi-process verifier diverged
#      from the single-process session (dist_verify byte-compares them
#      internally), or the worker-kill drill failed to recover
#      (scripts/dist_smoke.sh)
#  12  architecture doc drift: docs/ARCHITECTURE.md is missing or does not
#      mention some src/ subdirectory — every subsystem must have a chapter
set -uo pipefail

# Run from the repository root regardless of the caller's cwd (works when
# invoked by relative path, absolute path, or through a symlink).
repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

LINT_ONLY=0
RUN_BENCH=1
CI_MODE=0
CMAKE_ARGS=()
for arg in "$@"; do
  case "${arg}" in
    --lint-only) LINT_ONLY=1 ;;
    --no-bench) RUN_BENCH=0 ;;
    --ci) CI_MODE=1 ;;
    *) CMAKE_ARGS+=("${arg}") ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"

# One line per check in --ci mode: check name, ok/fail/skip, and the exit
# code class the check fails with.
ci_report() {  # <check> <status> <exit-class>
  if [ "${CI_MODE}" -eq 1 ]; then
    echo "verify.sh: [ci] check=$1 status=$2 exit=$3"
  fi
}
fail() {  # <check> <exit-class> <message>
  ci_report "$1" fail "$2"
  echo "verify.sh: FAIL — $3" >&2
  exit "$2"
}

# --- Lint class 1: generated build trees must never be committed (PR 1
# accidentally checked in ~300 files under build/; .gitignore now covers it).
if tracked_build="$(git ls-files -- 'build/*' 'build-scalar/*' "*.o")" && [ -n "${tracked_build}" ]; then
  echo "${tracked_build}" | head -20 >&2
  fail tracked-build-files 2 "generated files are tracked by git (listed above)"
fi
ci_report tracked-build-files ok 2

# --- Lint class 2: clang-format drift (skipped with a warning when the
# binary is absent, e.g. on minimal containers).  CLANG_FORMAT overrides
# the binary so CI can pin a version that matches contributors' machines.
CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if command -v "${CLANG_FORMAT}" >/dev/null 2>&1; then
  if ! git ls-files -- '*.cpp' '*.hpp' | xargs -r "${CLANG_FORMAT}" --dry-run --Werror; then
    fail clang-format 3 "clang-format drift (run: git ls-files '*.cpp' '*.hpp' | xargs ${CLANG_FORMAT} -i)"
  fi
  ci_report clang-format ok 3
else
  echo "verify.sh: ${CLANG_FORMAT} not found; skipping format check"
  ci_report clang-format skip 3
fi

# --- Lint class 3: the architecture book must cover every layer.  Each
# src/ subdirectory is a subsystem; adding one without giving it a chapter
# in docs/ARCHITECTURE.md fails here, so the map can never silently rot
# behind the territory.
if [ -f docs/ARCHITECTURE.md ]; then
  arch_missing=""
  for d in src/*/; do
    subsys="$(basename "${d}")"
    if ! grep -q "src/${subsys}" docs/ARCHITECTURE.md; then
      arch_missing="${arch_missing} src/${subsys}"
    fi
  done
  if [ -n "${arch_missing}" ]; then
    fail architecture-doc 12 "docs/ARCHITECTURE.md never mentions:${arch_missing}"
  fi
  ci_report architecture-doc ok 12
else
  fail architecture-doc 12 "docs/ARCHITECTURE.md is missing"
fi

if [ "${LINT_ONLY}" -eq 1 ]; then
  echo "verify.sh: lint OK"
  exit 0
fi

# --- Build ----------------------------------------------------------------
if ! cmake -B build -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"; then
  fail configure 4 "cmake configure"
fi
ci_report configure ok 4
if ! cmake --build build -j "${JOBS}"; then
  fail build 4 "build"
fi
ci_report build ok 4

# --- Tests ----------------------------------------------------------------
if ! ctest --test-dir build --output-on-failure -j "${JOBS}"; then
  fail ctest 5 "ctest"
fi
ci_report ctest ok 5

# --- Benchmark smoke: every suite must start, register, and execute at
# least one benchmark.  Filter to the smallest size arguments and cap
# measuring time so this stays seconds, not minutes, per binary.
if [ "${RUN_BENCH}" -eq 1 ]; then
  shopt -s nullglob
  benches=(build/bench_*)
  if [ "${#benches[@]}" -eq 0 ]; then
    echo "verify.sh: no benchmark binaries (google-benchmark absent?); skipping smoke"
    ci_report bench-smoke skip 6
  else
    for b in "${benches[@]}"; do
      [ -x "$b" ] || continue
      echo "--- smoke: $b"
      if ! "$b" --benchmark_min_time=0.001 \
           --benchmark_filter='/(0|1|10|16|50|64|100|200)($|/)|/1/real_time$|^[^/]+$' >/dev/null; then
        fail bench-smoke 6 "benchmark smoke: $b"
      fi
    done
    ci_report bench-smoke ok 6
  fi
else
  ci_report bench-smoke skip 6
fi

# --- SIMD/scalar cross-build certificate identity (--ci only): the two
# kernel sets must produce byte-identical certificates and verdicts on a
# fixed graph.  The in-build property tests already pin dispatched ==
# scalar WITHIN one binary; this is the cross-BUILD end of the contract —
# prove under each build, byte-compare the label files, then cross-verify
# each build's certificates with the OTHER build's verifier.
if [ "${CI_MODE}" -eq 1 ]; then
  if [ -x build/lanecert_cli ]; then
    scalar_build="build-scalar"
    if ! cmake -B "${scalar_build}" -S . -DLANECERT_SIMD=OFF \
         -DCMAKE_BUILD_TYPE=Release \
         "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}" >/dev/null; then
      fail simd-cross-build 7 "scalar-fallback configure"
    fi
    if ! cmake --build "${scalar_build}" -j "${JOBS}" --target lanecert_cli; then
      fail simd-cross-build 7 "scalar-fallback build"
    fi
    simd_tmp="$(mktemp -d)"
    trap 'rm -rf "${simd_tmp}"' EXIT
    # Fixed seed graph: a 48-vertex path with chords every third vertex —
    # deterministic bytes, connected, pathwidth small enough to certify
    # with default parameters.  The CLI's identity id-assignment makes the
    # whole prove/verify pipeline a pure function of this file.
    awk 'BEGIN {
      n = 48; m = 0;
      for (i = 0; i + 1 < n; ++i) { eu[m] = i; ev[m] = i + 1; ++m; }
      for (i = 0; i + 2 < n; i += 3) { eu[m] = i; ev[m] = i + 2; ++m; }
      print n, m;
      for (i = 0; i < m; ++i) print eu[i], ev[i];
    }' > "${simd_tmp}/graph.txt"
    if ! build/lanecert_cli prove "${simd_tmp}/graph.txt" connectivity \
         "${simd_tmp}/simd.cert" >/dev/null; then
      fail simd-cross-build 7 "prove failed in SIMD build"
    fi
    if ! "${scalar_build}/lanecert_cli" prove "${simd_tmp}/graph.txt" \
         connectivity "${simd_tmp}/scalar.cert" >/dev/null; then
      fail simd-cross-build 7 "prove failed in scalar build"
    fi
    if ! cmp -s "${simd_tmp}/simd.cert" "${simd_tmp}/scalar.cert"; then
      fail simd-cross-build 7 "certificates differ between SIMD and scalar builds"
    fi
    # Cross-verify: each build's verifier must accept the other's bytes.
    if ! build/lanecert_cli verify "${simd_tmp}/graph.txt" connectivity \
         "${simd_tmp}/scalar.cert" >/dev/null; then
      fail simd-cross-build 7 "SIMD verifier rejected scalar certificates"
    fi
    if ! "${scalar_build}/lanecert_cli" verify "${simd_tmp}/graph.txt" \
         connectivity "${simd_tmp}/simd.cert" >/dev/null; then
      fail simd-cross-build 7 "scalar verifier rejected SIMD certificates"
    fi
    ci_report simd-cross-build ok 7
  else
    echo "verify.sh: build/lanecert_cli missing; skipping SIMD cross-build check"
    ci_report simd-cross-build skip 7
  fi
else
  ci_report simd-cross-build skip 7
fi

# --- Certificate fuzz regression (--ci only): a deterministic slice of the
# structure-aware fuzz campaign (fixed seed, bounded budget).  Any
# violation — a crash, a hang past the budget, an accepted semantically
# corrupting mutation on a false instance — fails with its own exit class;
# fuzz_cert leaves crash-*.bin/.txt artifacts plus a --replay line for O(1)
# reproduction.  The ctest smoke already runs a smaller slice on every
# build; this leg is the longer standing campaign.
if [ "${CI_MODE}" -eq 1 ]; then
  if [ -x build/fuzz_cert ]; then
    mkdir -p build/fuzz-artifacts
    if ! build/fuzz_cert --seed 7 --iters 40000 --budget-seconds 100 \
         --artifact-dir build/fuzz-artifacts; then
      fail cert-fuzz 8 "certificate fuzz campaign failed (artifacts in build/fuzz-artifacts)"
    fi
    ci_report cert-fuzz ok 8
  else
    echo "verify.sh: build/fuzz_cert missing; skipping fuzz regression check"
    ci_report cert-fuzz skip 8
  fi
else
  ci_report cert-fuzz skip 8
fi

# --- Wire-level serving smoke (--ci only): boot the daemon on loopback,
# byte-compare a streamed certificate against the in-process encoding,
# sustain mixed load above the CI throughput floor, and SIGTERM-drain.
# scripts/wire_smoke.sh is the single implementation; the CI wire-smoke
# job calls the same script.
if [ "${CI_MODE}" -eq 1 ]; then
  if [ -x build/lanecert_serverd ] && [ -x build/load_driver ] \
     && [ -x build/wire_fetch ]; then
    if ! bash scripts/wire_smoke.sh build 4 1000; then
      fail wire-smoke 9 "wire serving smoke (scripts/wire_smoke.sh)"
    fi
    ci_report wire-smoke ok 9
  else
    echo "verify.sh: wire tools missing in build/; skipping wire smoke"
    ci_report wire-smoke skip 9
  fi
else
  ci_report wire-smoke skip 9
fi

# --- Snapshot warm-start round trip (--ci only): persist the plan for a
# fixed graph, prove it warm (plan MUST come from the snapshot —
# --require-hit fails unless snapshotHits >= 1 and planBuilds == 0), prove
# it cold in a separate directory-less run, and byte-compare the
# certificates.  Warm-start is only correct if a snapshot-loaded plan is
# indistinguishable from a freshly built one all the way to the label bytes.
if [ "${CI_MODE}" -eq 1 ]; then
  if [ -x build/snapshot_tool ]; then
    snap_tmp="$(mktemp -d)"
    trap 'rm -rf "${snap_tmp}" ${simd_tmp:+"${simd_tmp}"}' EXIT
    # Fixed graph: 64-vertex path with chords every fourth vertex —
    # deterministic, connected, small pathwidth.
    awk 'BEGIN {
      n = 64; m = 0;
      for (i = 0; i + 1 < n; ++i) { eu[m] = i; ev[m] = i + 1; ++m; }
      for (i = 0; i + 3 < n; i += 4) { eu[m] = i; ev[m] = i + 3; ++m; }
      print n, m;
      for (i = 0; i < m; ++i) print eu[i], ev[i];
    }' > "${snap_tmp}/graph.txt"
    if ! build/snapshot_tool persist "${snap_tmp}/graph.txt" \
         "${snap_tmp}/snaps" >/dev/null; then
      fail snapshot-roundtrip 10 "snapshot_tool persist failed"
    fi
    if ! build/snapshot_tool prove "${snap_tmp}/graph.txt" connectivity \
         "${snap_tmp}/warm.cert" --snapshot-dir "${snap_tmp}/snaps" \
         --require-hit >/dev/null; then
      fail snapshot-roundtrip 10 "warm prove missed the snapshot (or failed)"
    fi
    if ! build/snapshot_tool prove "${snap_tmp}/graph.txt" connectivity \
         "${snap_tmp}/cold.cert" >/dev/null; then
      fail snapshot-roundtrip 10 "cold prove failed"
    fi
    if ! cmp -s "${snap_tmp}/warm.cert" "${snap_tmp}/cold.cert"; then
      fail snapshot-roundtrip 10 "warm and cold certificates differ"
    fi
    ci_report snapshot-roundtrip ok 10
  else
    echo "verify.sh: build/snapshot_tool missing; skipping snapshot round trip"
    ci_report snapshot-roundtrip skip 10
  fi
else
  ci_report snapshot-roundtrip skip 10
fi

# --- Distributed verification smoke (--ci only): coordinator + forked
# workers over a 65536-vertex workload, byte-compared against the
# single-process session inside dist_verify itself, then the same workload
# with a worker armed to SIGKILL itself mid-sweep — recovery (re-fork +
# journal replay) must leave the results byte-identical.
# scripts/dist_smoke.sh is the single implementation; the CI dist-smoke
# job calls the same script.
if [ "${CI_MODE}" -eq 1 ]; then
  if [ -x build/dist_verify ]; then
    if ! bash scripts/dist_smoke.sh build 65536 4; then
      fail dist-smoke 11 "dist verification smoke (scripts/dist_smoke.sh)"
    fi
    ci_report dist-smoke ok 11
  else
    echo "verify.sh: build/dist_verify missing; skipping dist smoke"
    ci_report dist-smoke skip 11
  fi
else
  ci_report dist-smoke skip 11
fi

echo "verify.sh: OK"
