#!/usr/bin/env bash
# Wire-level end-to-end smoke: boots the serving daemon on loopback,
# byte-compares a streamed certificate against the in-process reference,
# drives sustained mixed load with a throughput floor, and exercises the
# SIGTERM graceful drain.
#
# Usage: scripts/wire_smoke.sh [build-dir] [duration-seconds] [min-throughput]
#
# Checks, each fatal:
#   1. serverd binds and prints its ephemeral port;
#   2. `wire_fetch fetch` over the socket == `wire_fetch local` in-process,
#      byte for byte (the network boundary adds exactly nothing);
#   3. load_driver sustains the floor (default 1000 req/s) for the
#      duration with zero worker errors;
#   4. SIGTERM drains: the daemon exits 0 within the grace window.
set -uo pipefail

build="${1:-build}"
duration="${2:-4}"
floor="${3:-1000}"

for bin in lanecert_serverd wire_fetch load_driver; do
  if [ ! -x "${build}/${bin}" ]; then
    echo "wire_smoke: ${build}/${bin} missing (build it first)" >&2
    exit 1
  fi
done

tmp="$(mktemp -d)"
serverd_pid=""
cleanup() {
  if [ -n "${serverd_pid}" ] && kill -0 "${serverd_pid}" 2>/dev/null; then
    kill -KILL "${serverd_pid}" 2>/dev/null
  fi
  rm -rf "${tmp}"
}
trap cleanup EXIT

"${build}/lanecert_serverd" --drain-grace-ms 3000 \
  > "${tmp}/serverd.out" 2> "${tmp}/serverd.err" &
serverd_pid=$!

# The daemon prints "listening <addr> <port>" once bound.
port=""
for _ in $(seq 1 100); do
  if ! kill -0 "${serverd_pid}" 2>/dev/null; then
    cat "${tmp}/serverd.err" >&2
    echo "wire_smoke: serverd died before binding" >&2
    exit 1
  fi
  port="$(awk '/^listening/ {print $3}' "${tmp}/serverd.out" 2>/dev/null)"
  [ -n "${port}" ] && break
  sleep 0.1
done
if [ -z "${port}" ]; then
  echo "wire_smoke: serverd never reported its port" >&2
  exit 1
fi
echo "wire_smoke: serverd pid ${serverd_pid} on 127.0.0.1:${port}"

# --- streamed certificate == in-process bytes ------------------------------
awk 'BEGIN {
  n = 48; m = 0;
  for (i = 0; i + 1 < n; ++i) { eu[m] = i; ev[m] = i + 1; ++m; }
  for (i = 0; i + 2 < n; i += 3) { eu[m] = i; ev[m] = i + 2; ++m; }
  print n, m;
  for (i = 0; i < m; ++i) print eu[i], ev[i];
}' > "${tmp}/graph.txt"
if ! "${build}/wire_fetch" fetch 127.0.0.1 "${port}" "${tmp}/graph.txt" \
     connectivity "${tmp}/wire.cert"; then
  echo "wire_smoke: wire fetch failed" >&2
  exit 1
fi
if ! "${build}/wire_fetch" local "${tmp}/graph.txt" connectivity \
     "${tmp}/local.cert"; then
  echo "wire_smoke: local reference failed" >&2
  exit 1
fi
if ! cmp -s "${tmp}/wire.cert" "${tmp}/local.cert"; then
  echo "wire_smoke: streamed certificate differs from in-process bytes" >&2
  exit 1
fi
echo "wire_smoke: streamed certificate byte-identical to in-process result"

# --- sustained mixed load with a throughput floor --------------------------
if ! "${build}/load_driver" --port "${port}" --connections 4 --pipeline 8 \
     --vertices 24 --duration-seconds "${duration}" \
     --min-throughput "${floor}" --json "${tmp}/load.json"; then
  echo "wire_smoke: load driver failed or fell below ${floor} req/s" >&2
  exit 1
fi

# --- SIGTERM graceful drain ------------------------------------------------
kill -TERM "${serverd_pid}"
drained=1
for _ in $(seq 1 100); do
  if ! kill -0 "${serverd_pid}" 2>/dev/null; then
    drained=0
    break
  fi
  sleep 0.1
done
if [ "${drained}" -ne 0 ]; then
  echo "wire_smoke: serverd did not drain within 10s of SIGTERM" >&2
  exit 1
fi
wait "${serverd_pid}"
rc=$?
serverd_pid=""
if [ "${rc}" -ne 0 ]; then
  cat "${tmp}/serverd.err" >&2
  echo "wire_smoke: serverd exited ${rc} after SIGTERM" >&2
  exit 1
fi
cat "${tmp}/serverd.err"
echo "wire_smoke: OK"
