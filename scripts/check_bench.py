#!/usr/bin/env python3
"""CI perf gate: compare a google-benchmark JSON run against the committed
bench/BENCH_*.json baselines and fail on regressions.

The committed baselines are the archival before/after records each PR
writes (see bench/README.md).  This script extracts every (benchmark,
expected_ms) pair they contain — the fields `after_ms`, `now_ms`, and `ms`
are "current state" records; `before_ms` / historical fields are ignored —
and takes the MINIMUM when several files mention the same benchmark (the
tightest value is the most recent banked win).  A current measurement may
exceed its expectation by at most the gate factor.

Current measurements use the MINIMUM real_time across repetitions: the min
is the noise-robust statistic for a regression gate (noise only ever adds
time).

Usage:
    check_bench.py --current out.json [more.json ...]
                   [--baseline-dir bench] [--factor 1.25]
                   [--require REGEX ...]

Exit codes: 0 all gated benchmarks within budget; 1 at least one
regression; 2 usage/coverage error (e.g. a required benchmark pattern
matched nothing — a silently skipped gate must fail loudly).

The factor can also be set via the BENCH_GATE_FACTOR environment variable
(the CI workflow uses that to widen the gate on noisy shared runners
without editing the workflow).
"""

import argparse
import json
import os
import re
import sys
from pathlib import Path

# Baseline fields that record the CURRENT state of a benchmark (as opposed
# to pre-optimization history like `before_ms` / `pr3_ms`).
CURRENT_FIELDS = ("after_ms", "now_ms", "ms")

DEFAULT_REQUIRED = (r"BM_Prover/", r"BM_ProverHead/", r"BM_Verifier/",
                    r"BM_Reverify/")

TIME_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def collect_baselines(baseline_dir: Path) -> dict[str, float]:
    """Extracts {benchmark_name: expected_ms} from every BENCH_*.json."""
    expected: dict[str, float] = {}

    def visit(node) -> None:
        if isinstance(node, dict):
            name = node.get("benchmark")
            if isinstance(name, str):
                for field in CURRENT_FIELDS:
                    value = node.get(field)
                    if isinstance(value, (int, float)):
                        prev = expected.get(name)
                        expected[name] = min(prev, float(value)) \
                            if prev is not None else float(value)
                        break
            for child in node.values():
                visit(child)
        elif isinstance(node, list):
            for child in node:
                visit(child)

    files = sorted(baseline_dir.glob("BENCH_*.json"))
    if not files:
        print(f"check_bench: no BENCH_*.json baselines in {baseline_dir}",
              file=sys.stderr)
        sys.exit(2)
    for path in files:
        try:
            visit(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError) as err:
            print(f"check_bench: unreadable baseline {path}: {err}",
                  file=sys.stderr)
            sys.exit(2)
    return expected


def collect_current(paths: list[Path]) -> dict[str, float]:
    """Extracts {benchmark_name: min real_time ms} from benchmark output."""
    raw: dict[str, list[float]] = {}
    aggregates: dict[str, list[float]] = {}
    for path in paths:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"check_bench: unreadable run file {path}: {err}",
                  file=sys.stderr)
            sys.exit(2)
        for entry in doc.get("benchmarks", []):
            name = entry.get("name")
            value = entry.get("real_time")
            unit = entry.get("time_unit", "ns")
            if not isinstance(name, str) or not isinstance(value, (int, float)):
                continue
            ms = float(value) * TIME_UNIT_TO_MS.get(unit, 1e-6)
            aggregate = entry.get("aggregate_name")
            if aggregate is None:
                raw.setdefault(name, []).append(ms)
            else:
                # Aggregate rows are named "<bench>_<agg>"; fold them back
                # onto the plain name so --benchmark_report_aggregates_only
                # output still gates.
                plain = name.removesuffix(f"_{aggregate}")
                aggregates.setdefault(plain, []).append(ms)
    current = {name: min(values) for name, values in raw.items()}
    for name, values in aggregates.items():
        current.setdefault(name, min(values))
    return current


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--current", nargs="+", type=Path, required=True,
                        help="google-benchmark --benchmark_out JSON file(s)")
    parser.add_argument("--baseline-dir", type=Path,
                        default=Path(__file__).resolve().parent.parent / "bench")
    parser.add_argument("--factor", type=float,
                        default=float(os.environ.get("BENCH_GATE_FACTOR",
                                                     "1.25")),
                        help="max allowed current/expected ratio")
    parser.add_argument("--require", nargs="*", default=list(DEFAULT_REQUIRED),
                        help="regexes that must each match a gated benchmark")
    args = parser.parse_args()

    expected = collect_baselines(args.baseline_dir)
    current = collect_current(args.current)

    gated = sorted(set(expected) & set(current))
    failures = 0
    for name in gated:
        ratio = current[name] / expected[name] if expected[name] > 0 else 0.0
        status = "OK" if ratio <= args.factor else "FAIL"
        failures += status == "FAIL"
        print(f"{status} {name} current={current[name]:.3f}ms "
              f"expected<={expected[name] * args.factor:.3f}ms "
              f"(baseline={expected[name]:.3f}ms ratio={ratio:.2f})")
    for name in sorted(set(current) - set(expected)):
        print(f"SKIP {name} current={current[name]:.3f}ms (no baseline)")

    missing = [pattern for pattern in args.require
               if not any(re.search(pattern, name) for name in gated)]
    if missing:
        print(f"check_bench: required benchmark pattern(s) matched nothing: "
              f"{missing} — the gate would silently pass; fix the filter or "
              f"the baselines", file=sys.stderr)
        return 2
    if failures:
        print(f"check_bench: {failures} regression(s) beyond "
              f"{args.factor:.2f}x", file=sys.stderr)
        return 1
    print(f"check_bench: {len(gated)} benchmark(s) within {args.factor:.2f}x "
          f"of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
