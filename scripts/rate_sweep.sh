#!/usr/bin/env bash
# Open-loop rate sweep over the wire-serving daemon: boots serverd on
# loopback once, then drives load_driver at a ladder of --rate targets and
# merges the per-rate JSON reports into one artifact showing where the
# latency/throughput knee sits (offered rate vs achieved throughput vs
# p50/p99 latency).
#
# Open-loop means senders pace by the clock, NOT by replies: when the
# service saturates, achieved throughput plateaus below the offered rate
# and tail latency climbs — the knee a closed-loop driver (which slows
# down with the server) structurally cannot see.
#
# Usage: scripts/rate_sweep.sh [build-dir] [out.json] [duration-s] [rates...]
#   build-dir   default build
#   out.json    merged artifact path, default build/rate_sweep.json
#   duration-s  per-rate measurement window, default 3
#   rates...    offered req/s ladder, default "500 1000 2000 4000 8000"
#
# Exit nonzero if the daemon fails to boot/drain or any load_driver run
# errors (a rate merely not being achieved is DATA, not an error).
set -uo pipefail

build="${1:-build}"
out="${2:-${build}/rate_sweep.json}"
duration="${3:-3}"
shift $(( $# > 3 ? 3 : $# )) || true
rates=("$@")
if [ "${#rates[@]}" -eq 0 ]; then
  rates=(500 1000 2000 4000 8000)
fi

for bin in lanecert_serverd load_driver; do
  if [ ! -x "${build}/${bin}" ]; then
    echo "rate_sweep: ${build}/${bin} missing (build it first)" >&2
    exit 1
  fi
done

tmp="$(mktemp -d)"
serverd_pid=""
cleanup() {
  if [ -n "${serverd_pid}" ] && kill -0 "${serverd_pid}" 2>/dev/null; then
    kill -KILL "${serverd_pid}" 2>/dev/null
  fi
  rm -rf "${tmp}"
}
trap cleanup EXIT

"${build}/lanecert_serverd" --drain-grace-ms 3000 \
  > "${tmp}/serverd.out" 2> "${tmp}/serverd.err" &
serverd_pid=$!

port=""
for _ in $(seq 1 100); do
  if ! kill -0 "${serverd_pid}" 2>/dev/null; then
    cat "${tmp}/serverd.err" >&2
    echo "rate_sweep: serverd died before binding" >&2
    exit 1
  fi
  port="$(awk '/^listening/ {print $3}' "${tmp}/serverd.out" 2>/dev/null)"
  [ -n "${port}" ] && break
  sleep 0.1
done
if [ -z "${port}" ]; then
  echo "rate_sweep: serverd never reported its port" >&2
  exit 1
fi
echo "rate_sweep: serverd pid ${serverd_pid} on 127.0.0.1:${port}"

# One warm-up burst so the sweep measures steady state, not first-prove
# plan builds.
"${build}/load_driver" --port "${port}" --connections 2 --pipeline 4 \
  --vertices 24 --duration-seconds 1 >/dev/null 2>&1 || true

mkdir -p "$(dirname "${out}")"
{
  echo '{'
  echo '  "description": "open-loop rate sweep: offered req/s vs achieved throughput and latency percentiles; the knee is where throughput_rps stops tracking offered_rps and p99_ms inflects",'
  echo "  \"duration_seconds\": ${duration},"
  echo '  "points": ['
} > "${out}"

first=1
for rate in "${rates[@]}"; do
  echo "rate_sweep: offered ${rate} req/s for ${duration}s"
  if ! "${build}/load_driver" --port "${port}" --connections 4 --pipeline 8 \
       --vertices 24 --rate "${rate}" --duration-seconds "${duration}" \
       --json "${tmp}/rate-${rate}.json" > "${tmp}/rate-${rate}.log" 2>&1; then
    cat "${tmp}/rate-${rate}.log" >&2
    echo "rate_sweep: load_driver failed at rate ${rate}" >&2
    exit 1
  fi
  [ "${first}" -eq 0 ] && echo ',' >> "${out}"
  first=0
  # Embed the per-rate report under its offered rate, indented two levels.
  {
    printf '    { "offered_rps": %s, "report":\n' "${rate}"
    sed 's/^/    /' "${tmp}/rate-${rate}.json"
    printf '    }'
  } >> "${out}"
done
{
  echo ''
  echo '  ]'
  echo '}'
} >> "${out}"

kill -TERM "${serverd_pid}"
drained=1
for _ in $(seq 1 100); do
  if ! kill -0 "${serverd_pid}" 2>/dev/null; then
    drained=0
    break
  fi
  sleep 0.1
done
if [ "${drained}" -ne 0 ]; then
  echo "rate_sweep: serverd did not drain within 10s of SIGTERM" >&2
  exit 1
fi
wait "${serverd_pid}"
rc=$?
serverd_pid=""
if [ "${rc}" -ne 0 ]; then
  cat "${tmp}/serverd.err" >&2
  echo "rate_sweep: serverd exited ${rc} after SIGTERM" >&2
  exit 1
fi

echo "rate_sweep: wrote $(wc -c < "${out}") bytes to ${out}"
